/**
 * @file
 * Unit tests for the exact event matrix and the sampling profiler.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/prof/accounting.hh"
#include "src/prof/sampler.hh"

using namespace na;
using namespace na::prof;

namespace {

TEST(BinAccounting, AddAndQuery)
{
    BinAccounting acct(2);
    acct.add(0, FuncId::TcpSendmsg, Event::Cycles, 100);
    acct.add(1, FuncId::TcpSendmsg, Event::Cycles, 50);
    acct.add(0, FuncId::TcpAck, Event::Cycles, 7);
    acct.add(0, FuncId::AllocSkb, Event::Cycles, 3);

    EXPECT_EQ(acct.get(0, FuncId::TcpSendmsg, Event::Cycles), 100u);
    EXPECT_EQ(acct.byFunc(FuncId::TcpSendmsg, Event::Cycles), 150u);
    EXPECT_EQ(acct.byBin(Bin::Engine, Event::Cycles), 157u);
    EXPECT_EQ(acct.byBin(Bin::BufMgmt, Event::Cycles), 3u);
    EXPECT_EQ(acct.byBinCpu(0, Bin::Engine, Event::Cycles), 107u);
    EXPECT_EQ(acct.total(Event::Cycles), 160u);
    EXPECT_EQ(acct.totalCpu(1, Event::Cycles), 50u);
    EXPECT_EQ(acct.total(Event::LlcMisses), 0u);
}

TEST(BinAccounting, ZeroCountIsIgnored)
{
    BinAccounting acct(1);
    acct.add(0, FuncId::TcpAck, Event::Branches, 0);
    EXPECT_EQ(acct.total(Event::Branches), 0u);
}

TEST(BinAccounting, ResetClearsEverything)
{
    BinAccounting acct(2);
    acct.add(1, FuncId::CopyToUser, Event::LlcMisses, 9);
    acct.reset();
    EXPECT_EQ(acct.total(Event::LlcMisses), 0u);
}

TEST(BinAccountingDeath, BadCpuPanics)
{
    BinAccounting acct(2);
    EXPECT_DEATH(acct.add(2, FuncId::TcpAck, Event::Cycles, 1),
                 "bad cpu");
}

TEST(BinAccounting, ListenerSeesEveryPosting)
{
    struct Probe : Listener
    {
        std::uint64_t total = 0;
        int calls = 0;
        void
        onEvents(sim::CpuId, FuncId, Event, std::uint64_t n) override
        {
            total += n;
            ++calls;
        }
    } probe;

    BinAccounting acct(1);
    acct.setListener(&probe);
    acct.add(0, FuncId::TcpAck, Event::Cycles, 10);
    acct.add(0, FuncId::TcpAck, Event::Cycles, 5);
    acct.setListener(nullptr);
    acct.add(0, FuncId::TcpAck, Event::Cycles, 99);
    EXPECT_EQ(probe.calls, 2);
    EXPECT_EQ(probe.total, 15u);
}

TEST(SampleProfiler, SamplesAtConfiguredMeanRate)
{
    SampleProfiler prof(1, /*seed=*/3);
    prof.setSamplingInterval(Event::Cycles, 100);
    prof.setSkidProbability(0.0);

    BinAccounting acct(1);
    acct.setListener(&prof);
    for (int i = 0; i < 10000; ++i)
        acct.add(0, FuncId::TcpAck, Event::Cycles, 10); // 100k events
    // Jittered sampling: ~1000 samples expected.
    const double got = static_cast<double>(
        prof.samples(0, FuncId::TcpAck, Event::Cycles));
    EXPECT_NEAR(got, 1000.0, 100.0);
    EXPECT_EQ(prof.totalSamples(0, Event::Cycles),
              static_cast<std::uint64_t>(got));
}

TEST(SampleProfiler, UnconfiguredEventsIgnored)
{
    SampleProfiler prof(1);
    BinAccounting acct(1);
    acct.setListener(&prof);
    acct.add(0, FuncId::TcpAck, Event::Branches, 100000);
    EXPECT_EQ(prof.totalSamples(0, Event::Branches), 0u);
}

TEST(SampleProfiler, SkidAttributesToNextFunction)
{
    SampleProfiler prof(1, /*seed=*/5);
    prof.setSamplingInterval(Event::Cycles, 10);
    prof.setSkidProbability(1.0); // every sample skids
    BinAccounting acct(1);
    acct.setListener(&prof);
    acct.add(0, FuncId::TcpAck, Event::Cycles, 10);      // sample skids
    acct.add(0, FuncId::CopyToUser, Event::Cycles, 10);  // lands here
    EXPECT_EQ(prof.samples(0, FuncId::TcpAck, Event::Cycles), 0u);
    EXPECT_GE(prof.samples(0, FuncId::CopyToUser, Event::Cycles), 1u);
}

TEST(SampleProfiler, FinalizeFlushesPendingSkidToLastFunction)
{
    SampleProfiler prof(1, /*seed=*/5);
    prof.setSamplingInterval(Event::Cycles, 10);
    prof.setSkidProbability(1.0); // every sample skids
    BinAccounting acct(1);
    acct.setListener(&prof);
    // Plenty of events, but no later function ever runs: every sample
    // sits in the skid queue and the totals read zero — the bug this
    // guards against is those samples silently vanishing at run end.
    acct.add(0, FuncId::TcpAck, Event::Cycles, 1000);
    EXPECT_EQ(prof.totalSamples(0, Event::Cycles), 0u);

    prof.finalize();
    const std::uint64_t flushed = prof.totalSamples(0, Event::Cycles);
    EXPECT_GT(flushed, 0u);
    EXPECT_EQ(prof.samples(0, FuncId::TcpAck, Event::Cycles), flushed);

    // Idempotent: a second finalize has nothing left to book.
    prof.finalize();
    EXPECT_EQ(prof.totalSamples(0, Event::Cycles), flushed);
}

TEST(SampleProfiler, SampledDistributionTracksExact)
{
    SampleProfiler prof(1, 42);
    prof.setSamplingInterval(Event::Cycles, 50);
    prof.setSkidProbability(0.1);
    BinAccounting acct(1);
    acct.setListener(&prof);
    // 70%/30% split over many postings.
    for (int i = 0; i < 10000; ++i) {
        acct.add(0, FuncId::TcpSendmsg, Event::Cycles, 7);
        acct.add(0, FuncId::TcpAck, Event::Cycles, 3);
    }
    const double total =
        static_cast<double>(prof.totalSamples(0, Event::Cycles));
    ASSERT_GT(total, 100.0);
    const double frac =
        static_cast<double>(
            prof.samples(0, FuncId::TcpSendmsg, Event::Cycles)) /
        total;
    EXPECT_NEAR(frac, 0.7, 0.05);
}

TEST(SampleProfiler, TopFunctionsSortedDescending)
{
    SampleProfiler prof(2);
    prof.setSamplingInterval(Event::MachineClears, 1);
    prof.setSkidProbability(0.0);
    BinAccounting acct(2);
    acct.setListener(&prof);
    acct.add(0, FuncId::TcpAck, Event::MachineClears, 5);
    acct.add(0, FuncId::TcpSendmsg, Event::MachineClears, 9);
    acct.add(1, FuncId::CopyToUser, Event::MachineClears, 2);

    auto top = prof.topFunctions(0, Event::MachineClears, 10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].func, FuncId::TcpSendmsg);
    EXPECT_GE(top[0].samples, top[1].samples);
    EXPECT_EQ(top[1].func, FuncId::TcpAck);
    const double total = static_cast<double>(
        prof.totalSamples(0, Event::MachineClears));
    EXPECT_NEAR(top[0].percent,
                100.0 * static_cast<double>(top[0].samples) / total,
                0.01);

    auto top1 = prof.topFunctions(1, Event::MachineClears, 1);
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_EQ(top1[0].func, FuncId::CopyToUser);
}

TEST(SampleProfiler, ResetZeroesSamples)
{
    SampleProfiler prof(1);
    prof.setSamplingInterval(Event::Cycles, 1);
    BinAccounting acct(1);
    acct.setListener(&prof);
    acct.add(0, FuncId::TcpAck, Event::Cycles, 10);
    prof.reset();
    EXPECT_EQ(prof.totalSamples(0, Event::Cycles), 0u);
}

} // namespace

namespace {

TEST(SampleProfiler, SystemLevelSamplingTracksExactBinShares)
{
    // The paper's methodology check: the Oprofile stand-in's sampled
    // cycle distribution must match the exact accounting within a few
    // percent over a full experiment run.
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.ttcp().mode = workload::TtcpMode::Transmit;
    cfg.ttcp().msgSize = 65536;
    core::System sys(cfg);

    SampleProfiler profiler(sys.kernel().numCpus(), 7);
    profiler.setSamplingInterval(Event::Cycles, 20'000);
    profiler.setSkidProbability(0.1);
    sys.kernel().accounting().setListener(&profiler);

    core::Experiment::measure(sys);

    auto &acct = sys.kernel().accounting();
    const double exact_total =
        static_cast<double>(acct.total(Event::Cycles));
    double sampled_total = 0;
    for (int c = 0; c < sys.kernel().numCpus(); ++c)
        sampled_total +=
            static_cast<double>(profiler.totalSamples(c, Event::Cycles));
    ASSERT_GT(sampled_total, 1000.0);

    for (Bin bin : allBins) {
        const double exact_share =
            static_cast<double>(acct.byBin(bin, Event::Cycles)) /
            exact_total;
        double sampled = 0;
        for (std::size_t f = 0; f < numFuncs; ++f) {
            if (funcDesc(static_cast<FuncId>(f)).bin != bin)
                continue;
            for (int c = 0; c < sys.kernel().numCpus(); ++c) {
                sampled += static_cast<double>(profiler.samples(
                    c, static_cast<FuncId>(f), Event::Cycles));
            }
        }
        const double sampled_share = sampled / sampled_total;
        EXPECT_NEAR(sampled_share, exact_share, 0.05)
            << "bin " << binName(bin);
    }
}

} // namespace
