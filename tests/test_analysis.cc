/**
 * @file
 * Unit tests for the analysis module: Spearman correlation, Amdahl
 * improvement decomposition, impact indicators, table formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/analysis/amdahl.hh"
#include "src/analysis/impact.hh"
#include "src/analysis/spearman.hh"
#include "src/analysis/table.hh"
#include "src/core/report.hh"

using namespace na;
using namespace na::analysis;

namespace {

TEST(Spearman, PerfectMonotoneIsOne)
{
    const std::vector<double> x{1, 2, 3, 4, 5, 6, 7};
    const std::vector<double> y{10, 20, 25, 40, 55, 60, 90};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{9, 7, 5, 3, 1};
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(Spearman, KnownTextbookValue)
{
    // Classic example: ranks differ by d = {0,-1,1,0}, n=4:
    // rho = 1 - 6*2/(4*15) = 0.8.
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{1, 3, 2, 4};
    EXPECT_NEAR(spearman(x, y), 0.8, 1e-12);
}

TEST(Spearman, TiesUseAverageRanks)
{
    const std::vector<double> x{1, 2, 2, 4};
    EXPECT_EQ(averageRanks(x),
              (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
    // Correlating a tied vector with itself is still 1.
    EXPECT_NEAR(spearman(x, x), 1.0, 1e-12);
}

TEST(Spearman, DegenerateInputs)
{
    const std::vector<double> one{5};
    EXPECT_EQ(spearman(one, one), 0.0);
    const std::vector<double> constant{3, 3, 3, 3};
    const std::vector<double> rising{1, 2, 3, 4};
    EXPECT_EQ(spearman(constant, rising), 0.0);
    EXPECT_EQ(spearman({}, {}), 0.0);
}

TEST(Spearman, CriticalValuesMatchTables)
{
    EXPECT_NEAR(spearmanCriticalValue(5), 0.900, 1e-9);
    EXPECT_NEAR(spearmanCriticalValue(7), 0.714, 1e-9);
    EXPECT_NEAR(spearmanCriticalValue(10), 0.564, 1e-9);
    EXPECT_NEAR(spearmanCriticalValue(30), 0.306, 1e-9);
    EXPECT_EQ(spearmanCriticalValue(3), 1.0);
    // Large-n approximation decreases with n.
    EXPECT_LT(spearmanCriticalValue(100), spearmanCriticalValue(31));
}

TEST(Spearman, TestVerdict)
{
    const std::vector<double> x{1, 2, 3, 4, 5, 6, 7};
    const std::vector<double> yup{2, 3, 5, 7, 11, 13, 17};
    const SpearmanResult good = spearmanTest(x, yup);
    EXPECT_TRUE(good.significant);
    const std::vector<double> noise{3, 1, 4, 1, 5, 9, 2};
    const SpearmanResult bad = spearmanTest(x, noise);
    EXPECT_FALSE(bad.significant);
}

TEST(Spearman, MonotoneFourPointSeriesIsSignificant)
{
    // At n=4 the one-tailed p=0.05 critical value is exactly 1.000, so
    // only a perfectly monotone series can reach it — and it must:
    // reaching the tabulated boundary IS significance (the old strict
    // `rho > critical` comparison could never fire for n=4).
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{10, 20, 30, 40};
    const SpearmanResult r = spearmanTest(x, y);
    EXPECT_DOUBLE_EQ(r.rho, 1.0);
    EXPECT_DOUBLE_EQ(r.critical, 1.0);
    EXPECT_TRUE(r.significant);
}

core::RunResult
mkRun(std::uint64_t work, std::vector<std::uint64_t> bin_cycles,
      std::vector<std::uint64_t> bin_llc)
{
    core::RunResult r;
    r.payloadBytes = work;
    std::uint64_t total = 0;
    std::uint64_t total_llc = 0;
    for (std::size_t b = 0; b < bin_cycles.size(); ++b) {
        r.bins[b].cycles = bin_cycles[b];
        r.bins[b].llcMisses = b < bin_llc.size() ? bin_llc[b] : 0;
        total += bin_cycles[b];
        total_llc += r.bins[b].llcMisses;
    }
    r.overall.cycles = total;
    r.eventTotals[static_cast<std::size_t>(prof::Event::Cycles)] = total;
    r.eventTotals[static_cast<std::size_t>(prof::Event::LlcMisses)] =
        total_llc;
    return r;
}

TEST(Amdahl, UniformHalvingGivesFiftyPercent)
{
    // Both runs do the same work; the optimized one halves every bin.
    const core::RunResult base =
        mkRun(1000, {100, 100, 100, 100}, {10, 10, 10, 10});
    const core::RunResult opt =
        mkRun(1000, {50, 50, 50, 50}, {5, 5, 5, 5});
    const ImprovementColumn col =
        improvementColumn(base, opt, prof::Event::Cycles);
    EXPECT_NEAR(col.overall, 50.0, 1e-9);
    EXPECT_NEAR(col.perBin[0], 12.5, 1e-9);
}

TEST(Amdahl, WeightsByBaselineShare)
{
    // Bin0 is 90% of time and halves; bin1 is 10% and vanishes.
    const core::RunResult base = mkRun(1000, {900, 100}, {0, 0});
    const core::RunResult opt = mkRun(1000, {450, 0}, {0, 0});
    const ImprovementColumn col =
        improvementColumn(base, opt, prof::Event::Cycles);
    EXPECT_NEAR(col.perBin[0], 45.0, 1e-9);
    EXPECT_NEAR(col.perBin[1], 10.0, 1e-9);
    EXPECT_NEAR(col.overall, 55.0, 1e-9);
}

TEST(Amdahl, NormalizesPerWorkDone)
{
    // Optimized run did twice the work with the same raw event count:
    // that's a 50% per-work improvement.
    const core::RunResult base = mkRun(1000, {100}, {});
    const core::RunResult opt = mkRun(2000, {100}, {});
    const ImprovementColumn col =
        improvementColumn(base, opt, prof::Event::Cycles);
    EXPECT_NEAR(col.perBin[0], 50.0, 1e-9);
}

TEST(Amdahl, RegressionsAreNegative)
{
    const core::RunResult base = mkRun(1000, {100, 100}, {});
    const core::RunResult opt = mkRun(1000, {150, 50}, {});
    const ImprovementColumn col =
        improvementColumn(base, opt, prof::Event::Cycles);
    EXPECT_LT(col.perBin[0], 0.0);
    EXPECT_GT(col.perBin[1], 0.0);
    EXPECT_NEAR(col.overall, 0.0, 1e-9);
}

TEST(Amdahl, EmptyRunsYieldZero)
{
    const core::RunResult base = mkRun(0, {}, {});
    const core::RunResult opt = mkRun(0, {}, {});
    const ImprovementColumn col =
        improvementColumn(base, opt, prof::Event::Cycles);
    EXPECT_EQ(col.overall, 0.0);
}

TEST(Amdahl, FullTableCoversThreeEvents)
{
    const core::RunResult base = mkRun(1000, {100, 50}, {20, 8});
    const core::RunResult opt = mkRun(1000, {80, 25}, {10, 2});
    const ImprovementTable t = improvementTable(base, opt);
    EXPECT_GT(t.cycles.overall, 0.0);
    EXPECT_GT(t.llcMisses.overall, 0.0);
    EXPECT_EQ(t.machineClears.overall, 0.0); // no clears recorded
}

TEST(Impact, CostsMatchPaperFigure5)
{
    EXPECT_EQ(impactCost(ImpactRow::MachineClear), 500.0);
    EXPECT_EQ(impactCost(ImpactRow::LlcMiss), 300.0);
    EXPECT_EQ(impactCost(ImpactRow::TcMiss), 20.0);
    EXPECT_EQ(impactCost(ImpactRow::L2Miss), 10.0);
    EXPECT_EQ(impactCost(ImpactRow::ItlbMiss), 30.0);
    EXPECT_EQ(impactCost(ImpactRow::DtlbMiss), 36.0);
    EXPECT_EQ(impactCost(ImpactRow::BrMispredict), 30.0);
    EXPECT_NEAR(impactCost(ImpactRow::Instructions), 1.0 / 3.0, 1e-12);
}

TEST(Impact, ColumnArithmetic)
{
    core::RunResult r;
    auto set = [&r](prof::Event e, std::uint64_t v) {
        r.eventTotals[static_cast<std::size_t>(e)] = v;
    };
    set(prof::Event::Cycles, 1'000'000);
    set(prof::Event::MachineClears, 1000); // 1000*500/1e6 = 50%
    set(prof::Event::LlcMisses, 1000);     // 30%
    set(prof::Event::Instructions, 300'000); // /3 -> 10%
    const ImpactColumn col = impactColumn(r);
    EXPECT_NEAR(col.pctTime[static_cast<std::size_t>(
                    ImpactRow::MachineClear)],
                50.0, 1e-9);
    EXPECT_NEAR(
        col.pctTime[static_cast<std::size_t>(ImpactRow::LlcMiss)], 30.0,
        1e-9);
    EXPECT_NEAR(col.pctTime[static_cast<std::size_t>(
                    ImpactRow::Instructions)],
                10.0, 1e-6);
}

TEST(Impact, ZeroCyclesGivesZeroColumn)
{
    const core::RunResult r;
    const ImpactColumn col = impactColumn(r);
    for (double v : col.pctTime)
        EXPECT_EQ(v, 0.0);
}

TEST(TableWriter, AlignsAndUnderlines)
{
    TableWriter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Every line has the same length (fixed-width columns).
    std::istringstream is(out);
    std::string line;
    std::size_t len = 0;
    while (std::getline(is, line)) {
        if (len == 0)
            len = line.size();
        EXPECT_LE(line.size(), len + 1);
    }
}

TEST(TableWriter, Formatters)
{
    EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TableWriter::pct(12.345, 1), "12.3%");
    EXPECT_EQ(TableWriter::integer(42), "42");
}

TEST(TableWriter, ShortRowsPadded)
{
    TableWriter t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

} // namespace

namespace {

TEST(Report, CharacterizationRendersAllBins)
{
    core::RunResult r;
    for (std::size_t b = 0; b < prof::numBins; ++b) {
        r.bins[b].cycles = 100 * (b + 1);
        r.bins[b].instructions = 50 * (b + 1);
        r.bins[b].pctCycles = 10.0;
        r.bins[b].cpi = 2.0;
    }
    std::ostringstream os;
    core::renderCharacterization(os, r);
    const std::string out = os.str();
    EXPECT_NE(out.find("Engine"), std::string::npos);
    EXPECT_NE(out.find("Buf Mgmt"), std::string::npos);
    EXPECT_NE(out.find("Overall"), std::string::npos);
    // The paper's tables omit the User bin by default.
    EXPECT_EQ(out.find("User"), std::string::npos);

    core::ReportOptions opts;
    opts.includeUserBin = true;
    opts.includeOverall = false;
    std::ostringstream os2;
    core::renderCharacterization(os2, r, opts);
    EXPECT_NE(os2.str().find("User"), std::string::npos);
    EXPECT_EQ(os2.str().find("Overall"), std::string::npos);
}

TEST(Report, ComparisonShowsBothLabels)
{
    core::RunResult a;
    core::RunResult b;
    std::ostringstream os;
    core::renderComparison(os, "No", a, "Full", b);
    EXPECT_NE(os.str().find("%Cyc(No)"), std::string::npos);
    EXPECT_NE(os.str().find("CPI(Full)"), std::string::npos);
}

TEST(Report, SummaryLineFormatsMetrics)
{
    core::RunResult r;
    r.throughputMbps = 3456.7;
    r.ghzPerGbps = 1.16;
    r.cpuUtil = 0.995;
    const std::string line = core::summaryLine(r);
    EXPECT_NE(line.find("3457 Mb/s"), std::string::npos);
    EXPECT_NE(line.find("1.16 GHz/Gbps"), std::string::npos);
    EXPECT_NE(line.find("100%"), std::string::npos);
}

} // namespace
