/**
 * @file
 * Tests for adaptive RTO (Jacobson/Karels + Karn) and the checksum
 * offload knob.
 */

#include <gtest/gtest.h>

#include "src/net/tcp_connection.hh"

using namespace na;
using namespace na::net;

namespace {

/** Establish a pair by direct segment exchange at a given tick. */
void
establish(TcpConnection &a, TcpConnection &b, sim::Tick now)
{
    a.openActive();
    b.openPassive();
    std::vector<Segment> syn = a.pullSegments(now);
    std::vector<Segment> synack;
    b.onSegment(syn.at(0), now, synack);
    std::vector<Segment> ack;
    a.onSegment(synack.at(0), now, ack);
    std::vector<Segment> none;
    b.onSegment(ack.at(0), now, none);
    ASSERT_EQ(a.state(), TcpState::Established);
}

/** Send one segment at t_send, ack it at t_ack; return the ack. */
void
exchange(TcpConnection &a, TcpConnection &b, sim::Tick t_send,
         sim::Tick t_ack)
{
    a.appendSendData(1448);
    std::vector<Segment> segs = a.pullSegments(t_send);
    ASSERT_EQ(segs.size(), 1u);
    std::vector<Segment> replies;
    b.onSegment(segs[0], t_ack, replies);
    b.consume(b.readableBytes()); // keep the window open
    if (replies.empty())
        b.onDelackTimer(t_ack, replies);
    ASSERT_FALSE(replies.empty());
    std::vector<Segment> none;
    a.onSegment(replies.back(), t_ack, none);
}

TEST(TcpRtt, FirstSampleSeedsSrtt)
{
    TcpConnection a;
    TcpConnection b;
    establish(a, b, 0);
    EXPECT_EQ(a.srttTicks(), 0u);
    exchange(a, b, 1000, 1000 + 50'000);
    EXPECT_EQ(a.srttTicks(), 50'000u);
    EXPECT_EQ(a.rttvarTicks(), 25'000u);
}

TEST(TcpRtt, SmoothingConvergesToStableRtt)
{
    TcpConnection a;
    TcpConnection b;
    establish(a, b, 0);
    sim::Tick now = 0;
    for (int i = 0; i < 60; ++i) {
        now += 1'000'000;
        exchange(a, b, now, now + 80'000);
    }
    EXPECT_NEAR(static_cast<double>(a.srttTicks()), 80'000.0, 2'000.0);
    // Variance collapses on a constant RTT.
    EXPECT_LT(a.rttvarTicks(), 10'000u);
}

TEST(TcpRtt, EffectiveRtoClampedToMinimum)
{
    TcpConnection a;
    TcpConnection b;
    establish(a, b, 0);
    sim::Tick now = 0;
    for (int i = 0; i < 30; ++i) {
        now += 1'000'000;
        exchange(a, b, now, now + 80'000); // 40 us RTT
    }
    // srtt + 4*var is far below the 200 ms floor.
    EXPECT_EQ(a.effectiveRto(), a.config().rtoTicks);
}

TEST(TcpRtt, LargeRttRaisesRto)
{
    TcpConfig cfg;
    cfg.rtoTicks = 1'000'000; // 0.5 ms floor for the test
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);
    sim::Tick now = 0;
    for (int i = 0; i < 60; ++i) {
        now += 100'000'000;
        exchange(a, b, now, now + 10'000'000); // 5 ms RTT
    }
    EXPECT_GT(a.effectiveRto(), 9'000'000u);
    EXPECT_LE(a.effectiveRto(), cfg.rtoMaxTicks);
}

TEST(TcpRtt, KarnRuleSkipsRetransmittedSamples)
{
    TcpConfig cfg;
    cfg.rtoTicks = 10'000;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);

    // Send a segment that gets lost; RTO fires; the retransmission is
    // acked much later — but must NOT produce an RTT sample.
    a.appendSendData(1448);
    std::vector<Segment> lost = a.pullSegments(100);
    ASSERT_EQ(lost.size(), 1u);
    a.onRtoTimer(a.rtoDeadline());
    std::vector<Segment> rtx = a.pullSegments(a.rtoDeadline());
    ASSERT_FALSE(rtx.empty());

    std::vector<Segment> replies;
    b.onSegment(rtx[0], 90'000'000, replies);
    if (replies.empty())
        b.onDelackTimer(90'000'000, replies);
    std::vector<Segment> none;
    a.onSegment(replies.back(), 90'000'000, none);
    EXPECT_EQ(a.srttTicks(), 0u) << "Karn violated: sampled a rtx";
    EXPECT_EQ(a.ackedBytes(), 1448u);
}

TEST(TcpRtt, DisabledAdaptiveRtoStaysFixed)
{
    TcpConfig cfg;
    cfg.adaptiveRto = false;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);
    sim::Tick now = 0;
    for (int i = 0; i < 10; ++i) {
        now += 1'000'000'000;
        exchange(a, b, now, now + 900'000'000); // enormous RTT
    }
    EXPECT_EQ(a.srttTicks(), 0u);
    EXPECT_EQ(a.effectiveRto(), cfg.rtoTicks);
}

TEST(TcpRtt, BackoffMultipliesEffectiveRto)
{
    TcpConfig cfg;
    cfg.rtoTicks = 10'000;
    TcpConnection a(cfg);
    a.openActive();
    a.pullSegments(0);
    const sim::Tick d0 = a.rtoDeadline();
    a.onRtoTimer(d0);
    a.pullSegments(d0);
    const sim::Tick d1 = a.rtoDeadline();
    a.onRtoTimer(d1);
    a.pullSegments(d1);
    const sim::Tick d2 = a.rtoDeadline();
    // Exponential backoff: gaps double.
    EXPECT_NEAR(static_cast<double>(d2 - d1),
                2.0 * static_cast<double>(d1 - d0), 2.0);
}

} // namespace
