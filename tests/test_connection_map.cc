/**
 * @file
 * Tests for the FlowKey-keyed connection layer: ConnectionMap chains
 * and pooling, listener fallback, the driver poll-key packing, and
 * end-to-end flow churn through listen/accept with socket recycling.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/system.hh"
#include "src/net/connection_map.hh"
#include "src/net/driver.hh"
#include "src/net/flow.hh"

using namespace na;

namespace {

/** Map with a deterministic fake line allocator (no kernel needed). */
struct MapRig
{
    explicit MapRig(std::size_t buckets)
        : root(nullptr, ""),
          map(&root, buckets, [this] { return nextLine += 64; })
    {
    }

    stats::Group root;
    sim::Addr nextLine = 0x1000;
    net::ConnectionMap map;
};

net::FlowKey
key(std::uint32_t n)
{
    net::FlowKey k;
    k.localAddr = 0x0a000001;
    k.remoteAddr = 0xc0a80000 + n;
    k.localPort = 5001;
    k.remotePort = static_cast<std::uint16_t>(1024 + (n % 60000));
    return k;
}

/** Mint @p n keys that all land in the same bucket. */
std::vector<net::FlowKey>
collidingKeys(const net::ConnectionMap &map, std::size_t n)
{
    std::vector<net::FlowKey> out;
    const std::size_t target = map.bucketOf(key(0));
    for (std::uint32_t i = 0; out.size() < n; ++i) {
        if (map.bucketOf(key(i)) == target)
            out.push_back(key(i));
    }
    return out;
}

TEST(ConnectionMap, InsertLookupEraseRoundTrip)
{
    MapRig rig(64);
    auto *fake_sock = reinterpret_cast<net::Socket *>(0x1);
    EXPECT_EQ(rig.map.lookup(key(7)), nullptr);
    net::ConnectionMap::Entry *e =
        rig.map.insert(key(7), fake_sock, nullptr);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->socket, fake_sock);
    EXPECT_NE(e->nodeLine, 0u);
    EXPECT_EQ(rig.map.lookup(key(7)), e);
    EXPECT_EQ(rig.map.size(), 1u);
    EXPECT_TRUE(rig.map.erase(key(7)));
    EXPECT_EQ(rig.map.lookup(key(7)), nullptr);
    EXPECT_EQ(rig.map.size(), 0u);
    EXPECT_FALSE(rig.map.erase(key(7)));
}

TEST(ConnectionMap, BucketCountRoundsUpToPowerOfTwo)
{
    MapRig rig(100);
    EXPECT_EQ(rig.map.bucketCount(), 128u);
}

// An adversarial chain: many keys forced into one bucket must all
// stay reachable, count collisions, and survive erasure from the
// middle of the chain.
TEST(ConnectionMap, AdversarialCollisionChainStaysConsistent)
{
    MapRig rig(16);
    const std::vector<net::FlowKey> keys = collidingKeys(rig.map, 8);
    std::vector<net::ConnectionMap::Entry *> entries;
    for (const net::FlowKey &k : keys)
        entries.push_back(rig.map.insert(k, nullptr, nullptr));

    EXPECT_EQ(rig.map.size(), keys.size());
    EXPECT_EQ(rig.map.maxChainLength(), keys.size());
    // 8 inserts into one bucket: all but the first hit an occupied slot.
    EXPECT_EQ(rig.map.collisions.value(),
              static_cast<double>(keys.size() - 1));
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(rig.map.lookup(keys[i]), entries[i]);

    // Remove every second entry (middle-of-chain unlinks included).
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(rig.map.erase(keys[i]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 2)
            EXPECT_EQ(rig.map.lookup(keys[i]), entries[i]);
        else
            EXPECT_EQ(rig.map.lookup(keys[i]), nullptr);
    }
    EXPECT_EQ(rig.map.maxChainLength(), keys.size() / 2);
}

// Churn storms must recycle entry nodes (and their simulated cache
// lines): the line set the map ever hands out is bounded by the peak
// live population, not by the total insert count.
TEST(ConnectionMap, ChurnReusesPooledEntriesAndLines)
{
    MapRig rig(32);
    std::set<sim::Addr> lines_seen;
    for (int round = 0; round < 100; ++round) {
        for (std::uint32_t i = 0; i < 16; ++i) {
            net::ConnectionMap::Entry *e =
                rig.map.insert(key(1000 + i), nullptr, nullptr);
            lines_seen.insert(e->nodeLine);
        }
        for (std::uint32_t i = 0; i < 16; ++i)
            EXPECT_TRUE(rig.map.erase(key(1000 + i)));
    }
    EXPECT_EQ(rig.map.size(), 0u);
    // 1600 inserts, but only the 16-line peak working set was minted.
    EXPECT_EQ(lines_seen.size(), 16u);
    EXPECT_EQ(rig.map.inserts.value(), 1600.0);
    EXPECT_EQ(rig.map.erases.value(), 1600.0);
}

TEST(ConnectionMap, ListenerFallbackPrefersExactOverWildcard)
{
    MapRig rig(16);
    auto *exact = reinterpret_cast<net::Socket *>(0x10);
    auto *wild = reinterpret_cast<net::Socket *>(0x20);
    rig.map.listen(0, 5001, wild, nullptr); // wildcard bind
    rig.map.listen(net::sutAddr(3), 5001, exact, nullptr);
    EXPECT_EQ(rig.map.listenerCount(), 2u);

    // Exact (addr, port) beats the wildcard...
    net::ConnectionMap::Entry *e =
        rig.map.lookupListener(net::sutAddr(3), 5001);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->socket, exact);
    // ...an unbound address falls back to the wildcard...
    e = rig.map.lookupListener(net::sutAddr(9), 5001);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->socket, wild);
    // ...and the wrong port matches nothing.
    EXPECT_EQ(rig.map.lookupListener(net::sutAddr(3), 80), nullptr);

    EXPECT_TRUE(rig.map.eraseListener(0, 5001));
    EXPECT_EQ(rig.map.lookupListener(net::sutAddr(9), 5001), nullptr);
    EXPECT_EQ(rig.map.listenerCount(), 1u);
}

// Regression: pollKey once packed the queue into 8 bits, so
// (nic 1, queue 0) aliased (nic 0, queue 256).
TEST(DriverPollKey, NicAndQueueCannotAlias)
{
    EXPECT_NE(net::Driver::pollKey(1, 0), net::Driver::pollKey(0, 256));
    EXPECT_NE(net::Driver::pollKey(1, 0),
              net::Driver::pollKey(0, 1 << 8));
    EXPECT_NE(net::Driver::pollKey(2, 3), net::Driver::pollKey(3, 2));
    EXPECT_EQ(net::Driver::pollKey(1, 2), net::Driver::pollKey(1, 2));
    // Full 32-bit queue ids survive.
    EXPECT_EQ(net::Driver::pollKey(0, 0x12345678) & 0xffffffffull,
              0x12345678ull);
}

core::SystemConfig
mixConfig(int conns = 1)
{
    core::SystemConfig cfg;
    cfg.platform.numCpus = 2;
    cfg.platform.seed = 12345;
    cfg.numConnections = conns;
    workload::FlowMixConfig mix;
    mix.maxConcurrentFlows = 8;
    mix.flowSizeMin = 1024;
    mix.flowSizeMax = 64 * 1024;
    mix.meanInterarrivalTicks = 150'000;
    cfg.workload = mix;
    return cfg;
}

// End-to-end churn: flows arrive, get accepted, complete, and every
// connection-table entry and pooled socket is returned once the
// client stops and the population drains.
TEST(FlowChurn, AcceptServeCloseLeavesNothingLive)
{
    core::System sys(mixConfig());
    ASSERT_TRUE(sys.establishAll(1'000'000));
    sys.runFor(40'000'000); // 20 ms of churn

    net::FlowClientPeer &client = sys.flowPeer(0);
    EXPECT_GT(client.flowsLaunched(), 0u);
    EXPECT_GT(sys.driver().synsAccepted.value(), 0.0);
    EXPECT_GT(sys.mixApp(0).flowsRetired(), 0u);

    client.stopArrivals();
    sys.runFor(400'000'000); // generous drain
    EXPECT_EQ(client.liveFlows(), 0u);
    EXPECT_EQ(sys.driver().connectionTable().size(), 0u);
    EXPECT_EQ(sys.socketPool().inUse(), 0u);
    EXPECT_EQ(client.flowsCompletedCount(), client.flowsLaunched());
    // Server-side byte accounting matches what completed flows sent.
    EXPECT_EQ(sys.mixApp(0).bytesReceived(), client.completedBytesSent());
}

// Accept-order determinism: identical configs produce bit-identical
// churn outcomes, run after run.
TEST(FlowChurn, ChurnIsDeterministicAcrossRuns)
{
    auto run = [] {
        core::System sys(mixConfig(2));
        sys.establishAll(1'000'000);
        sys.runFor(30'000'000);
        std::vector<double> sig;
        for (int i = 0; i < 2; ++i) {
            sig.push_back(sys.flowPeer(i).flowsStarted.value());
            sig.push_back(sys.flowPeer(i).flowsCompleted.value());
            sig.push_back(static_cast<double>(
                sys.mixApp(i).bytesReceived()));
            sig.push_back(static_cast<double>(
                sys.mixApp(i).flowsAccepted()));
        }
        sig.push_back(sys.driver().synsAccepted.value());
        sig.push_back(sys.driver().framesDelivered.value());
        sig.push_back(static_cast<double>(sys.eventQueue().now()));
        return sig;
    };
    EXPECT_EQ(run(), run());
}

// The concurrency cap defers arrivals instead of dropping them, and a
// deferred arrival is admitted as soon as a slot frees.
TEST(FlowChurn, ArrivalsBeyondCapAreDeferredNotLost)
{
    core::SystemConfig cfg = mixConfig();
    cfg.mix().maxConcurrentFlows = 2;
    cfg.mix().stormSize = 6; // every arrival bursts past the cap
    core::System sys(cfg);
    ASSERT_TRUE(sys.establishAll(1'000'000));
    sys.runFor(40'000'000);
    net::FlowClientPeer &client = sys.flowPeer(0);
    EXPECT_GT(client.deferredArrivals.value(), 0.0);
    client.stopArrivals();
    sys.runFor(400'000'000);
    EXPECT_EQ(client.liveFlows(), 0u);
    EXPECT_EQ(client.flowsCompletedCount(), client.flowsLaunched());
}

// RPC-mode flows complete their configured exchanges and the mix app
// sends the responses.
TEST(FlowChurn, RpcModeExchangesRequestsAndResponses)
{
    core::SystemConfig cfg = mixConfig();
    cfg.mix().rpc = true;
    cfg.mix().rpcRequestBytes = 256;
    cfg.mix().rpcResponseBytes = 2048;
    cfg.mix().rpcExchangesPerFlow = 3;
    core::System sys(cfg);
    ASSERT_TRUE(sys.establishAll(1'000'000));
    sys.runFor(40'000'000);
    net::FlowClientPeer &client = sys.flowPeer(0);
    client.stopArrivals();
    sys.runFor(400'000'000);
    EXPECT_EQ(client.liveFlows(), 0u);
    EXPECT_GT(client.flowsCompletedCount(), 0u);
    // Every completed flow pushed exactly 3 requests of 256 bytes.
    EXPECT_EQ(sys.mixApp(0).bytesReceived(),
              client.flowsCompletedCount() * 3u * 256u);
    EXPECT_GT(sys.mixApp(0).responses.value(), 0.0);
}

} // namespace
