/**
 * @file
 * Unit tests for the cache hierarchy and SMP snoop domain — the
 * mechanisms the affinity study rests on.
 */

#include <gtest/gtest.h>

#include "src/mem/addr_alloc.hh"
#include "src/mem/hierarchy.hh"

using namespace na;
using namespace na::mem;

namespace {

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : domain(), h0(&root, "h0", 0, smallGeom(), domain),
          h1(&root, "h1", 1, smallGeom(), domain)
    {
    }

    static CacheGeometry
    smallGeom()
    {
        CacheGeometry g;
        g.l1Size = 1024;
        g.l1Assoc = 2;
        g.l2Size = 4096;
        g.l2Assoc = 4;
        g.l3Size = 16384;
        g.l3Assoc = 4;
        return g;
    }

    stats::Group root{nullptr, ""};
    SnoopDomain domain;
    CacheHierarchy h0;
    CacheHierarchy h1;

    static constexpr sim::Addr kAddr =
        static_cast<sim::Addr>(Region::KernelData) * (1ULL << 30);
};

TEST_F(HierarchyTest, ColdReadMissesToMemory)
{
    AccessResult r = h0.access(kAddr, 64, false);
    EXPECT_EQ(r.lines, 1u);
    EXPECT_EQ(r.llcMisses, 1u);
    EXPECT_EQ(r.remoteHits, 0u);
    EXPECT_EQ(r.stallCycles, domain.memTiming().memCycles);
    EXPECT_TRUE(h0.present(kAddr));
    EXPECT_EQ(h0.probeLine(kAddr), LineState::Shared);
}

TEST_F(HierarchyTest, WarmReadHitsL1Free)
{
    h0.access(kAddr, 64, false);
    AccessResult r = h0.access(kAddr, 64, false);
    EXPECT_EQ(r.l1Hits, 1u);
    EXPECT_EQ(r.llcMisses, 0u);
    EXPECT_EQ(r.stallCycles, 0u);
}

TEST_F(HierarchyTest, ColdWriteInstallsModified)
{
    h0.access(kAddr, 8, true);
    EXPECT_EQ(h0.probeLine(kAddr), LineState::Modified);
}

TEST_F(HierarchyTest, MultiLineAccessCountsAllLines)
{
    AccessResult r = h0.access(kAddr, 256, false);
    EXPECT_EQ(r.lines, 4u);
    EXPECT_EQ(r.llcMisses, 4u);
    // Unaligned span crossing a line boundary:
    AccessResult r2 = h0.access(kAddr + 4096 + 60, 8, false);
    EXPECT_EQ(r2.lines, 2u);
}

TEST_F(HierarchyTest, RemoteWriteStealsLine)
{
    h0.access(kAddr, 64, false); // CPU0 caches it Shared
    AccessResult r = h1.access(kAddr, 64, true); // CPU1 writes
    EXPECT_EQ(r.stolenFrom[0], 1u);
    EXPECT_TRUE(r.stoleAny());
    EXPECT_FALSE(h0.present(kAddr));
    EXPECT_EQ(h1.probeLine(kAddr), LineState::Modified);
    EXPECT_EQ(h0.linesStolenByRemote.value(), 1.0);
}

TEST_F(HierarchyTest, RemoteDirtyReadIsCacheToCache)
{
    h0.access(kAddr, 64, true); // Modified on CPU0
    AccessResult r = h1.access(kAddr, 64, false);
    EXPECT_EQ(r.remoteHits, 1u);
    EXPECT_EQ(r.stallCycles, domain.memTiming().c2cCycles);
    // Downgraded to Shared on both sides.
    EXPECT_EQ(h0.probeLine(kAddr), LineState::Shared);
    EXPECT_EQ(h1.probeLine(kAddr), LineState::Shared);
}

TEST_F(HierarchyTest, SharedWriteUpgradesAndInvalidatesRemote)
{
    h0.access(kAddr, 64, false);
    h1.access(kAddr, 64, false); // both Shared
    AccessResult r = h0.access(kAddr, 64, true); // upgrade
    EXPECT_EQ(r.upgrades, 1u);
    EXPECT_EQ(r.stolenFrom[1], 1u);
    EXPECT_EQ(r.llcMisses, 0u); // hit locally, just ownership
    EXPECT_FALSE(h1.present(kAddr));
    EXPECT_EQ(h0.probeLine(kAddr), LineState::Modified);
}

TEST_F(HierarchyTest, PingPongCostsEveryTime)
{
    // The no-affinity pathology: two CPUs alternately writing a line.
    std::uint64_t total_stall = 0;
    for (int i = 0; i < 6; ++i) {
        total_stall += h0.access(kAddr, 8, true).stallCycles;
        total_stall += h1.access(kAddr, 8, true).stallCycles;
    }
    // After the first fill, every access is a c2c transfer.
    EXPECT_GE(total_stall, 11 * domain.memTiming().c2cCycles);
}

TEST_F(HierarchyTest, InclusionL3VictimBackInvalidatesInnerLevels)
{
    // Fill one L3 set (4 ways): set count = 16384/(4*64) = 64 sets;
    // same-set stride = 64 sets * 64 B = 4096.
    for (int i = 0; i < 4; ++i)
        h0.access(kAddr + static_cast<sim::Addr>(i) * 4096, 8, false);
    // Line 0 may still be in L1/L2; evicting it from L3 must purge it.
    h0.access(kAddr + 4 * 4096, 8, false);
    bool line0_in_l3 =
        h0.l3.probe(kAddr) != LineState::Invalid;
    if (!line0_in_l3) {
        EXPECT_EQ(h0.l1.probe(kAddr), LineState::Invalid);
        EXPECT_EQ(h0.l2.probe(kAddr), LineState::Invalid);
        EXPECT_FALSE(h0.present(kAddr));
    }
}

TEST_F(HierarchyTest, DmaWriteInvalidatesEveryCache)
{
    h0.access(kAddr, 128, true);
    h1.access(kAddr + 64, 64, false);
    DmaResult r = domain.dmaWrite(kAddr, 128);
    EXPECT_EQ(r.lines, 2u);
    EXPECT_EQ(r.stolenFrom[0], 2u);
    EXPECT_EQ(r.stolenFrom[1], 1u);
    EXPECT_FALSE(h0.present(kAddr));
    EXPECT_FALSE(h1.present(kAddr + 64));
}

TEST_F(HierarchyTest, DmaReadInvalidatesOnThisChipset)
{
    // The modeled ServerWorks-era chipset invalidates on DMA reads too
    // (dmaReadInvalidates default), so transmitted payload buffers come
    // back cold — the reason TX copies don't improve with affinity.
    h0.access(kAddr, 64, true);
    DmaResult r = domain.dmaRead(kAddr, 64);
    EXPECT_EQ(r.lines, 1u);
    EXPECT_EQ(r.stolenFrom[0], 1u);
    EXPECT_FALSE(h0.present(kAddr));
}

TEST(HierarchyDmaModes, DowngradingChipsetKeepsLines)
{
    MemTiming timing;
    timing.dmaReadInvalidates = false;
    stats::Group root(nullptr, "");
    SnoopDomain domain(timing);
    CacheHierarchy h(&root, "h", 0, CacheGeometry{}, domain);
    const sim::Addr addr =
        static_cast<sim::Addr>(Region::KernelData) * (1ULL << 30);
    h.access(addr, 64, true);
    DmaResult r = domain.dmaRead(addr, 64);
    EXPECT_EQ(r.lines, 1u);
    EXPECT_EQ(r.stolenFrom[0], 0u);
    EXPECT_TRUE(h.present(addr));
    EXPECT_EQ(h.probeLine(addr), LineState::Shared);
}

TEST_F(HierarchyTest, UncacheableAccessBypassesCaches)
{
    const sim::Addr mmio =
        static_cast<sim::Addr>(Region::Mmio) * (1ULL << 30) + 0x40;
    AccessResult rd = h0.access(mmio, 4, false);
    EXPECT_EQ(rd.uncached, 1u);
    EXPECT_EQ(rd.stallCycles, domain.memTiming().uncachedCycles);
    EXPECT_FALSE(h0.present(mmio));
    AccessResult wr = h0.access(mmio, 4, true);
    EXPECT_EQ(wr.stallCycles, domain.memTiming().uncachedWriteCycles);
}

TEST_F(HierarchyTest, OverlapScalesMissPenalty)
{
    AccessResult full = h0.access(kAddr, 64, false, 1.0);
    h0.flushAll();
    domain.dmaWrite(kAddr, 64); // ensure gone everywhere
    AccessResult half = h1.access(kAddr + 4096 * 7, 64, false, 0.5);
    EXPECT_NEAR(static_cast<double>(half.stallCycles),
                static_cast<double>(full.stallCycles) / 2.0, 1.0);
}

TEST_F(HierarchyTest, ZeroByteAccessIsNoop)
{
    AccessResult r = h0.access(kAddr, 0, true);
    EXPECT_EQ(r.lines, 0u);
    EXPECT_EQ(r.stallCycles, 0u);
}

TEST_F(HierarchyTest, L2AndL3HitLatencies)
{
    h0.access(kAddr, 64, false);
    // Evict from L1 only: fill its set. L1: 1024/(2*64)=8 sets,
    // same-set stride = 8*64 = 512.
    h0.access(kAddr + 512, 8, false);
    h0.access(kAddr + 1024, 8, false);
    // kAddr should now be L1-evicted but L2-resident.
    AccessResult r = h0.access(kAddr, 8, false);
    EXPECT_EQ(r.l1Hits, 0u);
    EXPECT_EQ(r.l2Hits + r.l3Hits, 1u);
    EXPECT_GT(r.stallCycles, 0u);
    EXPECT_LT(r.stallCycles, domain.memTiming().memCycles);
}

TEST(HierarchyDeath, CpusMustRegisterInOrder)
{
    stats::Group root(nullptr, "");
    SnoopDomain domain;
    EXPECT_EXIT(CacheHierarchy(&root, "h", 1, CacheGeometry{}, domain),
                ::testing::ExitedWithCode(1), "CPU-id order");
}

TEST(AddressAllocator, RegionsAndRounding)
{
    AddressAllocator alloc;
    const sim::Addr a = alloc.alloc(Region::KernelData, 10);
    const sim::Addr b = alloc.alloc(Region::KernelData, 10);
    EXPECT_EQ(b - a, 64u); // line-rounded
    EXPECT_EQ(AddressAllocator::regionOf(a), Region::KernelData);
    EXPECT_FALSE(AddressAllocator::isUncacheable(a));
    const sim::Addr m = alloc.alloc(Region::Mmio, 4);
    EXPECT_TRUE(AddressAllocator::isUncacheable(m));
    EXPECT_EQ(alloc.allocated(Region::KernelData), 128u);
}

TEST(AddressAllocator, DistinctRegionsDoNotOverlap)
{
    AddressAllocator alloc;
    const sim::Addr a = alloc.alloc(Region::SkbSlab, 64);
    const sim::Addr b = alloc.alloc(Region::UserData, 64);
    EXPECT_NE(AddressAllocator::regionOf(a),
              AddressAllocator::regionOf(b));
}

} // namespace
