/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "src/mem/cache.hh"

using namespace na;
using namespace na::mem;

namespace {

class CacheTest : public ::testing::Test
{
  protected:
    stats::Group root{nullptr, ""};
    // 4 KiB, 4-way, 64 B lines -> 16 sets.
    Cache cache{&root, "c", 4096, 4, 64};
};

TEST_F(CacheTest, Geometry)
{
    EXPECT_EQ(cache.sizeBytes(), 4096u);
    EXPECT_EQ(cache.associativity(), 4u);
    EXPECT_EQ(cache.sets(), 16u);
    EXPECT_EQ(cache.lineBytes(), 64u);
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST_F(CacheTest, MissThenHit)
{
    EXPECT_EQ(cache.lookup(0x1000), LineState::Invalid);
    EXPECT_EQ(cache.misses.value(), 1.0);
    cache.insert(0x1000, LineState::Shared);
    EXPECT_EQ(cache.lookup(0x1000), LineState::Shared);
    EXPECT_EQ(cache.hits.value(), 1.0);
}

TEST_F(CacheTest, SubLineAddressesShareALine)
{
    cache.insert(0x1000, LineState::Shared);
    EXPECT_EQ(cache.lookup(0x103f), LineState::Shared);
    EXPECT_EQ(cache.lookup(0x1040), LineState::Invalid); // next line
}

TEST_F(CacheTest, LruEvictsLeastRecentlyUsed)
{
    // Same set: addresses differ by sets*line = 1024.
    const sim::Addr base = 0x0;
    for (int i = 0; i < 4; ++i)
        cache.insert(base + static_cast<sim::Addr>(i) * 1024,
                     LineState::Shared);
    // Touch line 0 so line 1 is LRU.
    cache.lookup(base);
    Cache::Victim v = cache.insert(base + 4 * 1024, LineState::Shared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, base + 1024);
    EXPECT_FALSE(v.dirty);
    EXPECT_EQ(cache.lookup(base), LineState::Shared); // survived
    EXPECT_EQ(cache.lookup(base + 1024), LineState::Invalid);
}

TEST_F(CacheTest, DirtyVictimCountsWriteback)
{
    for (int i = 0; i < 4; ++i)
        cache.insert(static_cast<sim::Addr>(i) * 1024,
                     LineState::Modified);
    Cache::Victim v = cache.insert(4 * 1024, LineState::Shared);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(cache.writebacks.value(), 1.0);
    EXPECT_EQ(cache.evictions.value(), 1.0);
}

TEST_F(CacheTest, InsertUpgradesInPlace)
{
    cache.insert(0x2000, LineState::Shared);
    Cache::Victim v = cache.insert(0x2000, LineState::Modified);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(cache.probe(0x2000), LineState::Modified);
    // Re-inserting Shared must not downgrade.
    cache.insert(0x2000, LineState::Shared);
    EXPECT_EQ(cache.probe(0x2000), LineState::Modified);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST_F(CacheTest, InvalidateReturnsPreviousState)
{
    cache.insert(0x3000, LineState::Modified);
    EXPECT_EQ(cache.invalidate(0x3000), LineState::Modified);
    EXPECT_EQ(cache.probe(0x3000), LineState::Invalid);
    EXPECT_EQ(cache.invalidate(0x3000), LineState::Invalid);
    EXPECT_EQ(cache.snoopInvalidations.value(), 1.0);
}

TEST_F(CacheTest, DowngradeOnlyAffectsModified)
{
    cache.insert(0x4000, LineState::Modified);
    EXPECT_TRUE(cache.downgrade(0x4000));
    EXPECT_EQ(cache.probe(0x4000), LineState::Shared);
    EXPECT_TRUE(cache.downgrade(0x4000)); // present, stays Shared
    EXPECT_EQ(cache.probe(0x4000), LineState::Shared);
    EXPECT_FALSE(cache.downgrade(0x9000)); // absent
}

TEST_F(CacheTest, ProbeDoesNotTouchLru)
{
    for (int i = 0; i < 4; ++i)
        cache.insert(static_cast<sim::Addr>(i) * 1024,
                     LineState::Shared);
    cache.probe(0); // must NOT refresh line 0
    Cache::Victim v = cache.insert(4 * 1024, LineState::Shared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u); // line 0 was still LRU
}

TEST_F(CacheTest, FlushAllDropsEverything)
{
    cache.insert(0x1000, LineState::Modified);
    cache.insert(0x2000, LineState::Shared);
    EXPECT_EQ(cache.validLines(), 2u);
    cache.flushAll();
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_EQ(cache.probe(0x1000), LineState::Invalid);
}

TEST_F(CacheTest, SetModifiedOnPresentLine)
{
    cache.insert(0x5000, LineState::Shared);
    cache.setModified(0x5000);
    EXPECT_EQ(cache.probe(0x5000), LineState::Modified);
}

TEST(CacheDeath, SetModifiedOnAbsentLinePanics)
{
    stats::Group root(nullptr, "");
    Cache cache(&root, "c", 4096, 4, 64);
    EXPECT_DEATH(cache.setModified(0x7777), "absent line");
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    stats::Group root(nullptr, "");
    EXPECT_EXIT(Cache(&root, "c", 4096, 4, 60),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(Cache(&root, "c", 4000, 4, 64),
                ::testing::ExitedWithCode(1), "not divisible");
}

TEST_F(CacheTest, FindOrInsertMissFillsLine)
{
    const auto r = cache.findOrInsert(0x1000, LineState::Shared);
    EXPECT_FALSE(r.hit());
    EXPECT_EQ(r.prev, LineState::Invalid);
    EXPECT_FALSE(r.victim.valid);
    EXPECT_EQ(cache.misses.value(), 1.0);
    EXPECT_EQ(cache.hits.value(), 0.0);
    EXPECT_EQ(cache.probe(0x1000), LineState::Shared);
}

TEST_F(CacheTest, FindOrInsertHitReportsPreviousStateAndUpgrades)
{
    cache.insert(0x1000, LineState::Shared);
    const auto r = cache.findOrInsert(0x1000, LineState::Modified);
    EXPECT_TRUE(r.hit());
    EXPECT_EQ(r.prev, LineState::Shared);
    EXPECT_EQ(cache.hits.value(), 1.0);
    EXPECT_EQ(cache.probe(0x1000), LineState::Modified);
    // A Shared request on a Modified line must not downgrade.
    const auto r2 = cache.findOrInsert(0x1000, LineState::Shared);
    EXPECT_EQ(r2.prev, LineState::Modified);
    EXPECT_EQ(cache.probe(0x1000), LineState::Modified);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST_F(CacheTest, FindOrInsertEvictsExactlyLikeLookupPlusInsert)
{
    // Fill one set, touch line 0, then fill a fifth line: the single
    // merged walk must pick the same LRU victim the split path did
    // (see LruEvictsLeastRecentlyUsed) and count one eviction.
    for (int i = 0; i < 4; ++i)
        cache.insert(static_cast<sim::Addr>(i) * 1024, LineState::Shared);
    cache.lookup(0);
    const auto r = cache.findOrInsert(4 * 1024, LineState::Modified);
    EXPECT_FALSE(r.hit());
    ASSERT_TRUE(r.victim.valid);
    EXPECT_EQ(r.victim.lineAddr, 1024u);
    EXPECT_FALSE(r.victim.dirty);
    EXPECT_EQ(cache.evictions.value(), 1.0);
    EXPECT_EQ(cache.writebacks.value(), 0.0);
    EXPECT_EQ(cache.probe(4 * 1024), LineState::Modified);
}

TEST_F(CacheTest, FindOrInsertDirtyVictimCountsWriteback)
{
    for (int i = 0; i < 4; ++i)
        cache.insert(static_cast<sim::Addr>(i) * 1024,
                     LineState::Modified);
    const auto r = cache.findOrInsert(4 * 1024, LineState::Shared);
    ASSERT_TRUE(r.victim.valid);
    EXPECT_TRUE(r.victim.dirty);
    EXPECT_EQ(cache.writebacks.value(), 1.0);
}

TEST_F(CacheTest, SetModifiedIfPresentReportsPresence)
{
    EXPECT_FALSE(cache.setModifiedIfPresent(0x6000)); // absent: no panic
    cache.insert(0x6000, LineState::Shared);
    EXPECT_TRUE(cache.setModifiedIfPresent(0x6000));
    EXPECT_EQ(cache.probe(0x6000), LineState::Modified);
    EXPECT_TRUE(cache.setModifiedIfPresent(0x6000)); // already Modified
}

TEST_F(CacheTest, MruMemoSurvivesInvalidationAndFlush)
{
    // The fast path memoizes the most recently touched line; an
    // invalidation or flush must not let the memo report a stale hit.
    cache.insert(0x2000, LineState::Shared);
    EXPECT_EQ(cache.lookup(0x2000), LineState::Shared); // memo primed
    cache.invalidate(0x2000);
    EXPECT_EQ(cache.lookup(0x2000), LineState::Invalid);
    EXPECT_EQ(cache.snoopInvalidations.value(), 1.0);

    cache.insert(0x2000, LineState::Modified);
    EXPECT_EQ(cache.lookup(0x2000), LineState::Modified);
    cache.flushAll();
    EXPECT_EQ(cache.probe(0x2000), LineState::Invalid);
    EXPECT_EQ(cache.lookup(0x2000), LineState::Invalid);
}

TEST_F(CacheTest, MruMemoDistinguishesLinesInOneSet)
{
    // Two lines mapping to the same set: alternating lookups must each
    // revalidate against the full tag, not just the memoized way.
    cache.insert(0x0, LineState::Shared);
    cache.insert(1024, LineState::Modified); // same set, different tag
    EXPECT_EQ(cache.lookup(0x0), LineState::Shared);
    EXPECT_EQ(cache.lookup(1024), LineState::Modified);
    EXPECT_EQ(cache.lookup(0x0), LineState::Shared);
    EXPECT_EQ(cache.hits.value(), 3.0);
}

TEST_F(CacheTest, DifferentSetsDoNotConflict)
{
    // Fill way beyond one set's capacity across different sets.
    for (int i = 0; i < 16; ++i)
        cache.insert(static_cast<sim::Addr>(i) * 64, LineState::Shared);
    EXPECT_EQ(cache.evictions.value(), 0.0);
    EXPECT_EQ(cache.validLines(), 16u);
}

} // namespace
