/**
 * @file
 * Unit tests for the pure TCP protocol engine: handshake, data
 * transfer, windows, Nagle, delayed ACKs, reassembly, retransmission,
 * congestion control, teardown.
 */

#include <gtest/gtest.h>

#include "src/net/tcp_connection.hh"

using namespace na;
using namespace na::net;

namespace {

/** In-process "wire": hand segments between two connections. */
class Pair
{
  public:
    explicit Pair(TcpConfig cfg = TcpConfig{}) : a(cfg), b(cfg) {}

    /** Move all of src's pending output into dst; return count. */
    int
    flow(TcpConnection &src, TcpConnection &dst)
    {
        int moved = 0;
        // Loop because delivering replies can enable more output.
        for (int round = 0; round < 64; ++round) {
            std::vector<Segment> out = src.pullSegments(now);
            if (out.empty())
                break;
            for (const Segment &s : out) {
                ++moved;
                std::vector<Segment> replies;
                dst.onSegment(s, now, replies);
                for (const Segment &r : replies) {
                    std::vector<Segment> rr;
                    src.onSegment(r, now, rr);
                    // Two-level replies (rare) are re-injected.
                    for (const Segment &r2 : rr)
                        dst.onSegment(r2, now, replies);
                }
            }
        }
        return moved;
    }

    /** Run the exchange until quiescent, firing delack timers. */
    void
    settle()
    {
        for (int i = 0; i < 128; ++i) {
            int moved = flow(a, b) + flow(b, a);
            if (moved == 0) {
                // Flush delayed ACKs like their 40 ms timers would.
                for (TcpConnection *c : {&a, &b}) {
                    if (!c->delackPending())
                        continue;
                    std::vector<Segment> replies;
                    c->onDelackTimer(now, replies);
                    TcpConnection &other = (c == &a) ? b : a;
                    for (const Segment &r : replies) {
                        std::vector<Segment> rr;
                        other.onSegment(r, now, rr);
                        std::vector<Segment> sink;
                        for (const Segment &r2 : rr)
                            c->onSegment(r2, now, sink);
                        ++moved;
                    }
                }
            }
            if (moved == 0)
                return;
        }
        FAIL() << "connections did not settle";
    }

    void
    establish()
    {
        a.openActive();
        b.openPassive();
        settle();
        ASSERT_EQ(a.state(), TcpState::Established);
        ASSERT_EQ(b.state(), TcpState::Established);
    }

    TcpConnection a;
    TcpConnection b;
    sim::Tick now = 0;
};

TEST(TcpHandshake, ThreeWay)
{
    Pair p;
    p.a.openActive();
    p.b.openPassive();

    // SYN
    std::vector<Segment> syn = p.a.pullSegments(0);
    ASSERT_EQ(syn.size(), 1u);
    EXPECT_TRUE(syn[0].syn());
    EXPECT_FALSE(syn[0].hasAck());
    EXPECT_EQ(p.a.state(), TcpState::SynSent);

    // SYN-ACK
    std::vector<Segment> synack;
    p.b.onSegment(syn[0], 0, synack);
    ASSERT_EQ(synack.size(), 1u);
    EXPECT_TRUE(synack[0].syn());
    EXPECT_TRUE(synack[0].hasAck());
    EXPECT_EQ(p.b.state(), TcpState::SynRcvd);

    // ACK
    std::vector<Segment> ack;
    p.a.onSegment(synack[0], 0, ack);
    EXPECT_EQ(p.a.state(), TcpState::Established);
    ASSERT_EQ(ack.size(), 1u);
    EXPECT_TRUE(ack[0].hasAck());
    EXPECT_EQ(ack[0].len, 0u);

    std::vector<Segment> none;
    p.b.onSegment(ack[0], 0, none);
    EXPECT_EQ(p.b.state(), TcpState::Established);
    EXPECT_TRUE(none.empty());
}

TEST(TcpHandshake, SynRetransmitOnRto)
{
    TcpConnection a;
    a.openActive();
    EXPECT_EQ(a.pullSegments(0).size(), 1u);
    EXPECT_NE(a.rtoDeadline(), sim::maxTick);
    a.onRtoTimer(a.rtoDeadline());
    std::vector<Segment> again = a.pullSegments(a.rtoDeadline());
    ASSERT_EQ(again.size(), 1u);
    EXPECT_TRUE(again[0].syn());
    EXPECT_EQ(a.retransmitCount(), 1u);
}

TEST(TcpHandshake, DupSynInSynRcvdReelicitsSynAck)
{
    Pair p;
    p.a.openActive();
    p.b.openPassive();
    std::vector<Segment> syn = p.a.pullSegments(0);
    std::vector<Segment> synack;
    p.b.onSegment(syn[0], 0, synack);
    ASSERT_EQ(synack.size(), 1u);
    // The SYN-ACK is lost; the client retransmits its SYN.
    std::vector<Segment> again;
    p.b.onSegment(syn[0], 0, again);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_TRUE(again[0].syn());
    EXPECT_TRUE(again[0].hasAck());
    EXPECT_EQ(p.b.state(), TcpState::SynRcvd);
}

TEST(TcpHandshake, SynAckRetransmitOnRto)
{
    Pair p;
    p.a.openActive();
    p.b.openPassive();
    std::vector<Segment> syn = p.a.pullSegments(0);
    std::vector<Segment> synack;
    p.b.onSegment(syn[0], 0, synack);
    // SYN-ACK lost; the server's retransmission timer must re-emit it.
    ASSERT_NE(p.b.rtoDeadline(), sim::maxTick);
    p.b.onRtoTimer(p.b.rtoDeadline());
    std::vector<Segment> again = p.b.pullSegments(p.b.rtoDeadline());
    ASSERT_EQ(again.size(), 1u);
    EXPECT_TRUE(again[0].syn());
    EXPECT_TRUE(again[0].hasAck());
    EXPECT_EQ(p.b.retransmitCount(), 1u);
}

TEST(TcpData, SimpleTransferDelivers)
{
    Pair p;
    p.establish();
    EXPECT_EQ(p.a.appendSendData(5000), 5000u);
    p.settle();
    EXPECT_EQ(p.b.deliveredBytes(), 5000u);
    EXPECT_EQ(p.b.readableBytes(), 5000u);
    EXPECT_EQ(p.a.ackedBytes(), 5000u);
    EXPECT_EQ(p.a.bytesOutstanding(), 0u);
}

TEST(TcpData, SegmentsRespectMss)
{
    TcpConfig cfg;
    cfg.mss = 1000;
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(3500);
    std::vector<Segment> segs = p.a.pullSegments(0);
    ASSERT_GE(segs.size(), 3u);
    for (std::size_t i = 0; i + 1 < segs.size(); ++i)
        EXPECT_EQ(segs[i].len, 1000u);
}

TEST(TcpData, SendBufferLimitsAppend)
{
    TcpConfig cfg;
    cfg.sndBufBytes = 4000;
    Pair p(cfg);
    p.establish();
    EXPECT_EQ(p.a.sndBufSpace(), 4000u);
    EXPECT_EQ(p.a.appendSendData(10000), 4000u);
    EXPECT_EQ(p.a.sndBufSpace(), 0u);
    EXPECT_EQ(p.a.appendSendData(1), 0u);
    p.settle(); // acked: space returns
    EXPECT_EQ(p.a.sndBufSpace(), 4000u);
}

TEST(TcpData, ReceiverWindowThrottlesSender)
{
    TcpConfig cfg;
    cfg.rcvWndBytes = 4096;
    cfg.sndBufBytes = 65536;
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(20000);
    p.settle();
    // Receiver never consumed: at most one window's worth delivered.
    EXPECT_LE(p.b.deliveredBytes(), 4096u);
    EXPECT_GT(p.b.deliveredBytes(), 0u);
    // Consuming re-opens the window and more flows.
    p.b.consume(p.b.readableBytes());
    p.settle();
    EXPECT_GT(p.b.deliveredBytes(), 4096u);
}

TEST(TcpData, ConsumeEmitsWindowUpdate)
{
    TcpConfig cfg;
    cfg.rcvWndBytes = 8192;
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(8192);
    p.settle();
    ASSERT_EQ(p.b.readableBytes(), 8192u);
    EXPECT_EQ(p.b.advertisedWindow(), 0u);
    p.b.consume(8192);
    // Window reopened by a full buffer: must force an update ACK.
    std::vector<Segment> upd = p.b.pullSegments(0);
    ASSERT_FALSE(upd.empty());
    EXPECT_TRUE(upd[0].hasAck());
    EXPECT_EQ(upd[0].wnd, 8192u);
}

TEST(TcpNagle, HoldsPartialSegmentWhileUnackedData)
{
    Pair p;
    p.establish();
    p.a.appendSendData(100);
    std::vector<Segment> first = p.a.pullSegments(0);
    ASSERT_EQ(first.size(), 1u); // nothing in flight: may send
    EXPECT_EQ(first[0].len, 100u);

    p.a.appendSendData(100);
    EXPECT_TRUE(p.a.pullSegments(0).empty()) << "Nagle must hold";

    // Deliver the first segment's ACK: the held data releases.
    std::vector<Segment> replies;
    p.b.onSegment(first[0], 0, replies);
    // Force the delayed ack out.
    p.b.onDelackTimer(0, replies);
    ASSERT_FALSE(replies.empty());
    std::vector<Segment> rr;
    p.a.onSegment(replies.back(), 0, rr);
    std::vector<Segment> second = p.a.pullSegments(0);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].len, 100u);
}

TEST(TcpNagle, DisabledSendsImmediately)
{
    TcpConfig cfg;
    cfg.nagle = false;
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(100);
    EXPECT_EQ(p.a.pullSegments(0).size(), 1u);
    p.a.appendSendData(100);
    EXPECT_EQ(p.a.pullSegments(0).size(), 1u) << "no Nagle hold";
}

TEST(TcpAcks, EverySecondFullSegmentAcksImmediately)
{
    Pair p;
    p.establish();
    p.a.appendSendData(2 * p.a.config().mss);
    std::vector<Segment> segs = p.a.pullSegments(0);
    ASSERT_EQ(segs.size(), 2u);

    std::vector<Segment> replies;
    p.b.onSegment(segs[0], 0, replies);
    EXPECT_TRUE(replies.empty());
    EXPECT_TRUE(p.b.delackPending());
    p.b.onSegment(segs[1], 0, replies);
    ASSERT_EQ(replies.size(), 1u); // second full segment: ack now
    EXPECT_EQ(replies[0].ack, segs[1].seq + segs[1].len);
    EXPECT_FALSE(p.b.delackPending());
}

TEST(TcpAcks, DelackTimerFlushesPendingAck)
{
    Pair p;
    p.establish();
    p.a.appendSendData(300);
    std::vector<Segment> segs = p.a.pullSegments(0);
    ASSERT_EQ(segs.size(), 1u);
    std::vector<Segment> replies;
    p.b.onSegment(segs[0], 0, replies);
    EXPECT_TRUE(replies.empty());
    ASSERT_TRUE(p.b.delackPending());
    p.b.onDelackTimer(100, replies);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_FALSE(p.b.delackPending());
}

TEST(TcpReassembly, OutOfOrderBuffersAndDupAcks)
{
    Pair p;
    p.establish();
    p.a.appendSendData(3 * 1448);
    std::vector<Segment> segs = p.a.pullSegments(0);
    ASSERT_EQ(segs.size(), 3u);

    std::vector<Segment> replies;
    // Deliver #2 before #1: buffered, dup-ack emitted.
    p.b.onSegment(segs[1], 0, replies);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].ack, segs[0].seq); // still expecting seg 0
    EXPECT_EQ(p.b.deliveredBytes(), 0u);
    EXPECT_EQ(p.b.oooQueueSize(), 1u);

    replies.clear();
    p.b.onSegment(segs[0], 0, replies);
    EXPECT_EQ(p.b.deliveredBytes(), 2 * 1448u); // gap filled
    EXPECT_EQ(p.b.oooQueueSize(), 0u);

    replies.clear();
    p.b.onSegment(segs[2], 0, replies);
    EXPECT_EQ(p.b.deliveredBytes(), 3 * 1448u);
}

TEST(TcpReassembly, DuplicateSegmentReAcked)
{
    Pair p;
    p.establish();
    p.a.appendSendData(1448);
    std::vector<Segment> segs = p.a.pullSegments(0);
    std::vector<Segment> replies;
    p.b.onSegment(segs[0], 0, replies);
    replies.clear();
    p.b.onSegment(segs[0], 0, replies); // duplicate
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].ack, segs[0].seq + segs[0].len);
    EXPECT_EQ(p.b.deliveredBytes(), 1448u); // no double delivery
}

TEST(TcpRetransmit, FastRetransmitAfterThreeDupAcks)
{
    TcpConfig cfg;
    cfg.initialCwndSegs = 8; // room to emit the whole burst at once
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(5 * 1448);
    std::vector<Segment> segs = p.a.pullSegments(0);
    ASSERT_GE(segs.size(), 4u);

    // Lose segs[0]; deliver 1..3 -> three dup acks.
    std::vector<Segment> dups;
    for (int i = 1; i <= 3; ++i)
        p.b.onSegment(segs[static_cast<std::size_t>(i)], 0, dups);
    ASSERT_GE(dups.size(), 3u);
    std::vector<Segment> none;
    for (const Segment &d : dups)
        p.a.onSegment(d, 0, none);

    std::vector<Segment> rtx = p.a.pullSegments(0);
    ASSERT_FALSE(rtx.empty());
    EXPECT_EQ(rtx[0].seq, segs[0].seq);
    EXPECT_EQ(p.a.retransmitCount(), 1u);
    EXPECT_EQ(p.a.dupAckCount(), 3u);

    // Deliver the retransmission: everything recovers in order.
    std::vector<Segment> replies;
    p.b.onSegment(rtx[0], 0, replies);
    EXPECT_EQ(p.b.deliveredBytes(), 4 * 1448u);
}

TEST(TcpRetransmit, RtoCollapsesCwndAndBacksOff)
{
    Pair p;
    p.establish();
    const std::uint32_t cwnd0 = p.a.cwndBytes();
    p.a.appendSendData(4 * 1448);
    p.a.pullSegments(0); // all lost
    const sim::Tick d1 = p.a.rtoDeadline();
    ASSERT_NE(d1, sim::maxTick);
    p.a.onRtoTimer(d1);
    EXPECT_EQ(p.a.cwndBytes(), p.a.config().mss);
    EXPECT_LT(p.a.cwndBytes(), cwnd0);
    std::vector<Segment> rtx = p.a.pullSegments(d1);
    ASSERT_FALSE(rtx.empty());
    // Exponential backoff: next deadline further out.
    EXPECT_GT(p.a.rtoDeadline() - d1, p.a.config().rtoTicks);
}

TEST(TcpCongestion, SlowStartGrowsCwnd)
{
    TcpConfig cfg;
    cfg.rcvWndBytes = 256 * 1024;
    cfg.sndBufBytes = 256 * 1024;
    Pair p(cfg);
    p.establish();
    const std::uint32_t before = p.a.cwndBytes();
    p.a.appendSendData(100000);
    p.settle();
    p.b.consume(p.b.readableBytes());
    EXPECT_GT(p.a.cwndBytes(), before);
}

TEST(TcpClose, ActiveCloseFourWay)
{
    Pair p;
    p.establish();
    p.a.appendSendData(500);
    p.settle();
    p.b.consume(500);

    p.a.close();
    p.settle();
    EXPECT_TRUE(p.b.finReceived());
    EXPECT_EQ(p.b.state(), TcpState::CloseWait);
    EXPECT_EQ(p.a.state(), TcpState::FinWait2);

    p.b.close();
    p.settle();
    EXPECT_EQ(p.b.state(), TcpState::Closed);
    EXPECT_EQ(p.a.state(), TcpState::TimeWait);
}

TEST(TcpClose, FinWaitsForBufferedData)
{
    TcpConfig cfg;
    cfg.rcvWndBytes = 2048; // throttle so data stays queued
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(6000);
    p.a.close();
    p.settle();
    // Receiver hasn't consumed: FIN cannot have been accepted yet.
    EXPECT_FALSE(p.b.finReceived());
    p.b.consume(p.b.readableBytes());
    p.settle();
    p.b.consume(p.b.readableBytes());
    p.settle();
    p.b.consume(p.b.readableBytes());
    p.settle();
    EXPECT_TRUE(p.b.finReceived());
    EXPECT_EQ(p.b.deliveredBytes(), 6000u);
}

TEST(TcpClose, SimultaneousClose)
{
    Pair p;
    p.establish();
    p.a.close();
    p.b.close();
    // Pull both FINs before delivering either.
    std::vector<Segment> fa = p.a.pullSegments(0);
    std::vector<Segment> fb = p.b.pullSegments(0);
    ASSERT_EQ(fa.size(), 1u);
    ASSERT_EQ(fb.size(), 1u);
    ASSERT_TRUE(fa[0].fin());
    ASSERT_TRUE(fb[0].fin());
    std::vector<Segment> ra;
    std::vector<Segment> rb;
    p.b.onSegment(fa[0], 0, rb);
    p.a.onSegment(fb[0], 0, ra);
    for (const Segment &s : ra) {
        std::vector<Segment> x;
        p.b.onSegment(s, 0, x);
    }
    for (const Segment &s : rb) {
        std::vector<Segment> x;
        p.a.onSegment(s, 0, x);
    }
    EXPECT_TRUE(p.a.state() == TcpState::TimeWait ||
                p.a.state() == TcpState::Closing);
    EXPECT_TRUE(p.b.state() == TcpState::TimeWait ||
                p.b.state() == TcpState::Closing);
}

TEST(TcpMisc, RstAborts)
{
    Pair p;
    p.establish();
    Segment rst;
    rst.flags = flagRst;
    rst.seq = p.b.rcvNxtAbs();
    std::vector<Segment> replies;
    p.a.onSegment(rst, 0, replies);
    EXPECT_EQ(p.a.state(), TcpState::Closed);
    EXPECT_TRUE(replies.empty());
}

TEST(TcpMisc, AbortEmitsRstOnce)
{
    Pair p;
    p.establish();
    p.a.abort();
    EXPECT_EQ(p.a.state(), TcpState::Closed);
    std::vector<Segment> out = p.a.pullSegments(0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].rst());
    EXPECT_TRUE(p.a.pullSegments(0).empty()) << "RST must fire once";

    // Delivering the RST tears the peer down without a counter-RST.
    std::vector<Segment> replies;
    p.b.onSegment(out[0], 0, replies);
    EXPECT_EQ(p.b.state(), TcpState::Closed);
    EXPECT_TRUE(replies.empty());
    EXPECT_TRUE(p.b.pullSegments(0).empty());
}

TEST(TcpMisc, AbortBeforeOpenEmitsNothing)
{
    TcpConnection a;
    a.abort();
    EXPECT_TRUE(a.pullSegments(0).empty());
}

TEST(TcpMisc, AckBeyondSndNxtIgnored)
{
    Pair p;
    p.establish();
    Segment bogus;
    bogus.flags = flagAck;
    bogus.ack = p.a.sndNxtAbs() + 99999;
    bogus.wnd = 1000;
    std::vector<Segment> replies;
    p.a.onSegment(bogus, 0, replies);
    EXPECT_EQ(p.a.ackedBytes(), 0u);
}

TEST(TcpMisc, ZeroWindowArmsProbeTimer)
{
    TcpConfig cfg;
    cfg.rcvWndBytes = 1448;
    Pair p(cfg);
    p.establish();
    p.a.appendSendData(3 * 1448);
    p.settle();
    // Window now zero with data waiting: RTO must be armed to probe.
    EXPECT_GT(p.a.bytesOutstanding(), 0u);
    EXPECT_NE(p.a.rtoDeadline(), sim::maxTick);
}

TEST(TcpMisc, StateNamesPrintable)
{
    EXPECT_EQ(tcpStateName(TcpState::Established), "ESTABLISHED");
    EXPECT_EQ(tcpStateName(TcpState::TimeWait), "TIME_WAIT");
    Segment s;
    s.flags = flagSyn | flagAck;
    EXPECT_NE(s.describe().find("S."), std::string::npos);
}

TEST(TcpMisc, HasPendingOutputMatchesPull)
{
    Pair p;
    p.establish();
    EXPECT_FALSE(p.a.hasPendingOutput(0));
    p.a.appendSendData(100);
    EXPECT_TRUE(p.a.hasPendingOutput(0));
    p.a.pullSegments(0);
    EXPECT_FALSE(p.a.hasPendingOutput(0));
}

} // namespace
