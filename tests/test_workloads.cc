/**
 * @file
 * Integration tests for the iSCSI and web-server workloads and the
 * RPC-capable remote peer roles they rely on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/net/driver.hh"
#include "src/net/nic.hh"
#include "src/net/peer.hh"
#include "src/net/skb.hh"
#include "src/net/socket.hh"
#include "src/net/wire.hh"
#include "src/os/kernel.hh"
#include "src/sim/logging.hh"
#include "src/workload/iscsi.hh"
#include "src/workload/webserver.hh"

using namespace na;

namespace {

/** Minimal single-connection rig with a configurable peer role. */
struct Rig
{
    Rig(net::PeerRole role, const net::PeerRpcConfig &rpc,
        const net::TcpConfig &tcp = net::TcpConfig{})
        : root(nullptr, ""), kernel(&root, eq, cpu::PlatformConfig{}),
          pool(&root, kernel, 1024), driver(&root, kernel, pool),
          wire(&root, "wire", eq, 2.0e9, 1.0e9, 10'000),
          nic(&root, "nic", 0, kernel, pool, wire),
          socket(&root, "sock", kernel, driver, pool, net::connFlowKey(0),
                 tcp)
    {
        driver.attachNic(nic);
        driver.bindSocket(socket, nic);
        peer = std::make_unique<net::RemotePeer>(
            &root, "peer", eq, wire, net::connFlowKey(0), role, tcp,
            rpc);
        peer->start();
    }

    /** Request/response traffic sets TCP_NODELAY, like real iSCSI. */
    static net::TcpConfig
    noDelay()
    {
        net::TcpConfig t;
        t.nagle = false;
        return t;
    }

    stats::Group root;
    sim::EventQueue eq;
    os::Kernel kernel;
    net::SkbPool pool;
    net::Driver driver;
    net::Wire wire;
    net::Nic nic;
    net::Socket socket;
    std::unique_ptr<net::RemotePeer> peer;
};

TEST(IscsiWorkload, ReadOpsCompleteAndCount)
{
    workload::IscsiConfig icfg;
    icfg.op = workload::IscsiOp::Read;
    icfg.blockBytes = 16384;
    net::PeerRpcConfig rpc;
    rpc.reqBytes = workload::iscsiRequestBytes(icfg);
    rpc.respBytes = workload::iscsiResponseBytes(icfg);
    ASSERT_EQ(rpc.reqBytes, 48u);
    ASSERT_EQ(rpc.respBytes, 16384u + 48u);

    Rig rig(net::PeerRole::Responder, rpc, Rig::noDelay());
    workload::IscsiApp app(&rig.root, "init", rig.kernel, rig.socket,
                           icfg);
    rig.kernel.createTask("init", &app);
    rig.kernel.start();
    rig.eq.runUntil(200'000'000);

    EXPECT_GT(app.opsCompleted(), 10u);
    // Conservation: bytes in == ops * response size (no torn ops).
    EXPECT_NEAR(app.bytesIn.value(),
                static_cast<double>(app.opsCompleted()) * rpc.respBytes,
                rpc.respBytes);
    // The target may have answered one request whose response is
    // still in flight back to the initiator.
    EXPECT_NEAR(static_cast<double>(rig.peer->requestsCompleted()),
                static_cast<double>(app.opsCompleted()), 1.0);
}

TEST(IscsiWorkload, WriteOpsMoveDataOut)
{
    workload::IscsiConfig icfg;
    icfg.op = workload::IscsiOp::Write;
    icfg.blockBytes = 8192;
    net::PeerRpcConfig rpc;
    rpc.reqBytes = workload::iscsiRequestBytes(icfg);
    rpc.respBytes = workload::iscsiResponseBytes(icfg);
    ASSERT_EQ(rpc.reqBytes, 8192u + 48u);

    Rig rig(net::PeerRole::Responder, rpc, Rig::noDelay());
    workload::IscsiApp app(&rig.root, "init", rig.kernel, rig.socket,
                           icfg);
    rig.kernel.createTask("init", &app);
    rig.kernel.start();
    rig.eq.runUntil(200'000'000);

    EXPECT_GT(app.opsCompleted(), 10u);
    EXPECT_GT(app.bytesOut.value(), app.bytesIn.value());
}

TEST(WebWorkload, ServesPipelinedRequests)
{
    workload::WebServerConfig wcfg;
    wcfg.requestBytes = 512;
    wcfg.responseBytes = 8192;
    net::PeerRpcConfig rpc;
    rpc.reqBytes = wcfg.requestBytes;
    rpc.respBytes = wcfg.responseBytes;
    rpc.pipelineDepth = 3;

    Rig rig(net::PeerRole::Requester, rpc);
    workload::WebServerApp app(&rig.root, "worker", rig.kernel,
                               rig.socket, wcfg);
    rig.kernel.createTask("httpd", &app);
    rig.kernel.start();
    rig.eq.runUntil(200'000'000);

    EXPECT_GT(app.requestsServed(), 50u);
    EXPECT_NEAR(app.bytesServed.value(),
                static_cast<double>(app.requestsServed()) *
                    wcfg.responseBytes,
                wcfg.responseBytes);
    // The client counted the same completed exchanges (within the
    // pipeline depth of slack).
    EXPECT_NEAR(static_cast<double>(rig.peer->requestsCompleted()),
                static_cast<double>(app.requestsServed()),
                static_cast<double>(rpc.pipelineDepth) + 1);
}

TEST(WebWorkload, RequestsRequireFullBytes)
{
    // A requester that sends short requests starves the server: no
    // responses until a whole request accumulates.
    workload::WebServerConfig wcfg;
    wcfg.requestBytes = 1024;
    wcfg.responseBytes = 2048;
    net::PeerRpcConfig rpc;
    rpc.reqBytes = 512; // client sends half-requests
    rpc.respBytes = wcfg.responseBytes;
    rpc.pipelineDepth = 1;

    Rig rig(net::PeerRole::Requester, rpc);
    workload::WebServerApp app(&rig.root, "worker", rig.kernel,
                               rig.socket, wcfg);
    rig.kernel.createTask("httpd", &app);
    rig.kernel.start();
    rig.eq.runUntil(100'000'000);
    // One half-request in flight, never completed: nothing served.
    EXPECT_EQ(app.requestsServed(), 0u);
}

TEST(PeerRoles, ResponderAnswersExactly)
{
    net::PeerRpcConfig rpc;
    rpc.reqBytes = 100;
    rpc.respBytes = 700;
    Rig rig(net::PeerRole::Responder, rpc, Rig::noDelay());

    // Drive the socket manually from a trivial task.
    struct Pump : os::TaskLogic
    {
        net::Socket &s;
        sim::Addr buf;
        int sent = 0;
        std::uint64_t got = 0;
        explicit Pump(net::Socket &s, sim::Addr buf) : s(s), buf(buf) {}
        os::StepStatus
        step(os::ExecContext &ctx) override
        {
            if (!s.established()) {
                s.connect(ctx);
                return s.established() ? os::StepStatus::Continue
                                       : os::StepStatus::Blocked;
            }
            if (sent < 3) {
                if (s.send(ctx, buf, 100) == 100)
                    ++sent;
                return ctx.task->state == os::TaskState::Blocked
                           ? os::StepStatus::Blocked
                           : os::StepStatus::Continue;
            }
            const int r = s.recv(ctx, buf, 4096);
            if (r == 0)
                return os::StepStatus::Blocked;
            got += static_cast<std::uint64_t>(r);
            return os::StepStatus::Continue;
        }
    } pump(rig.socket,
           rig.kernel.addressSpace().alloc(mem::Region::UserData, 4096));

    rig.kernel.createTask("pump", &pump);
    rig.kernel.start();
    rig.eq.runUntil(200'000'000);
    EXPECT_EQ(pump.got, 3u * 700u);
    EXPECT_EQ(rig.peer->requestsCompleted(), 3u);
}

} // namespace
