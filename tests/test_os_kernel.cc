/**
 * @file
 * Integration tests for the OS layer: scheduling, wakeups, affinity,
 * timers, interrupts, idle accounting — driven through real event-queue
 * execution with synthetic task logic.
 */

#include <gtest/gtest.h>

#include "src/os/kernel.hh"
#include "src/sim/logging.hh"

#include <set>

using namespace na;
using namespace na::os;

namespace {

/** Burns a fixed charge per step; optionally sleeps on a wait queue. */
class BurnLogic : public TaskLogic
{
  public:
    explicit BurnLogic(std::uint64_t instr = 500) : instr(instr) {}

    StepStatus
    step(ExecContext &ctx) override
    {
        ++steps;
        lastCpu = ctx.cpuId();
        ++stepsPerCpu[static_cast<std::size_t>(ctx.cpuId())];
        ctx.charge(prof::FuncId::UserApp, instr, {});
        if (sleepAfter > 0 && steps >= sleepAfter && wq) {
            wq->sleepOn(ctx.task);
            return StepStatus::Blocked;
        }
        if (exitAfter > 0 && steps >= exitAfter)
            return StepStatus::Exited;
        return StepStatus::Continue;
    }

    std::uint64_t instr;
    int steps = 0;
    int sleepAfter = 0;
    int exitAfter = 0;
    WaitQueue *wq = nullptr;
    sim::CpuId lastCpu = sim::invalidCpu;
    std::array<int, 8> stepsPerCpu{};
};

class OsTest : public ::testing::Test
{
  protected:
    OsTest() : kernel(&root, eq, config())
    {
        kernel.start();
    }

    static cpu::PlatformConfig
    config()
    {
        cpu::PlatformConfig c;
        c.numCpus = 2;
        return c;
    }

    stats::Group root{nullptr, ""};
    sim::EventQueue eq;
    Kernel kernel;
};

TEST_F(OsTest, TasksRunAndExit)
{
    BurnLogic logic;
    logic.exitAfter = 10;
    Task *t = kernel.createTask("t", &logic);
    eq.runUntil(10'000'000);
    EXPECT_EQ(logic.steps, 10);
    EXPECT_EQ(t->state, TaskState::Exited);
}

TEST_F(OsTest, RunnableTasksShareBothCpus)
{
    std::vector<std::unique_ptr<BurnLogic>> logics;
    for (int i = 0; i < 4; ++i) {
        logics.push_back(std::make_unique<BurnLogic>(2000));
        kernel.createTask(sim::format("t%d", i), logics.back().get());
    }
    eq.runUntil(50'000'000); // 25 ms: past a timeslice
    int total = 0;
    std::array<int, 2> per_cpu{};
    for (auto &l : logics) {
        total += l->steps;
        per_cpu[0] += l->stepsPerCpu[0];
        per_cpu[1] += l->stepsPerCpu[1];
    }
    EXPECT_GT(total, 1000);
    EXPECT_GT(per_cpu[0], total / 4);
    EXPECT_GT(per_cpu[1], total / 4);
}

TEST_F(OsTest, TimesliceRotatesCpuHogs)
{
    // 3 hogs on 1 allowed CPU: all must make progress via timeslices.
    std::vector<std::unique_ptr<BurnLogic>> logics;
    for (int i = 0; i < 3; ++i) {
        logics.push_back(std::make_unique<BurnLogic>(5000));
        kernel.createTask(sim::format("hog%d", i), logics.back().get(),
                          0x1);
    }
    // 3 slices x 10 ms each, plus margin.
    eq.runUntil(90'000'000);
    for (auto &l : logics) {
        EXPECT_GT(l->steps, 100) << "a hog starved";
        EXPECT_EQ(l->stepsPerCpu[1], 0) << "affinity violated";
    }
}

TEST_F(OsTest, AffinityMaskConfinesTask)
{
    BurnLogic logic(1000);
    kernel.createTask("pinned", &logic, 0x2); // CPU1 only
    eq.runUntil(30'000'000);
    EXPECT_GT(logic.steps, 0);
    EXPECT_EQ(logic.stepsPerCpu[0], 0);
    EXPECT_GT(logic.stepsPerCpu[1], 0);
}

TEST_F(OsTest, SchedSetaffinityMovesRunningTask)
{
    BurnLogic logic(1000);
    Task *t = kernel.createTask("mover", &logic, 0x1);
    eq.runUntil(10'000'000);
    const int steps_on_0 = logic.stepsPerCpu[0];
    EXPECT_GT(steps_on_0, 0);
    kernel.schedSetaffinity(t, 0x2);
    eq.runUntil(20'000'000);
    EXPECT_EQ(logic.stepsPerCpu[0], steps_on_0) << "still ran on CPU0";
    EXPECT_GT(logic.stepsPerCpu[1], 0);
}

TEST_F(OsTest, BlockedTaskWokenByWaitQueue)
{
    WaitQueue wq;
    BurnLogic sleeper(100);
    sleeper.sleepAfter = 5;
    sleeper.wq = &wq;
    Task *t = kernel.createTask("sleeper", &sleeper);

    eq.runUntil(5'000'000);
    EXPECT_EQ(sleeper.steps, 5);
    EXPECT_EQ(t->state, TaskState::Blocked);

    // Wake from a synthetic softirq-ish context on CPU0.
    eq.scheduleLambda(eq.now() + 1000, "wake", [this, &wq] {
        ExecContext ctx(kernel, kernel.processor(0), nullptr);
        kernel.wakeUpOne(ctx, wq);
    });
    sleeper.sleepAfter = 0; // don't sleep again
    eq.runUntil(eq.now() + 5'000'000);
    EXPECT_GT(sleeper.steps, 5);
}

TEST_F(OsTest, CrossCpuWakeupSendsIpi)
{
    WaitQueue wq;
    BurnLogic sleeper(100);
    sleeper.sleepAfter = 1;
    sleeper.wq = &wq;
    Task *t = kernel.createTask("s", &sleeper, 0x2); // pinned CPU1

    // Give CPU1 a hog so it is not idle (idle CPUs are woken without
    // preemption pressure but still via IPI in our model).
    BurnLogic hog(3000);
    kernel.createTask("hog", &hog, 0x2);

    eq.runUntil(5'000'000);
    ASSERT_EQ(t->state, TaskState::Blocked);
    const double ipis0 =
        kernel.core(1).counters.ipisReceived.value();

    eq.scheduleLambda(eq.now() + 100, "wake", [this, &wq] {
        ExecContext ctx(kernel, kernel.processor(0), nullptr);
        kernel.wakeUpOne(ctx, wq); // waker CPU0, target CPU1
    });
    sleeper.sleepAfter = 0;
    eq.runUntil(eq.now() + 5'000'000);
    EXPECT_GT(kernel.core(1).counters.ipisReceived.value(), ipis0);
    EXPECT_GT(kernel.scheduler().wakeupsCrossCpu.value(), 0.0);
}

TEST_F(OsTest, IdleCpusAccumulateIdleCycles)
{
    // No tasks at all: both CPUs idle (timer ticks only).
    eq.runUntil(40'000'000);
    kernel.finalizeIdle(eq.now());
    for (int c = 0; c < 2; ++c) {
        const auto &pc = kernel.core(c).counters;
        EXPECT_GT(pc.idleCycles.value(), 30'000'000.0);
        EXPECT_LT(pc.utilization(), 0.05);
        // busy + idle covers the whole window (within a tick's slop).
        EXPECT_NEAR(pc.totalCycles(), 40'000'000.0, 1'000'000.0);
    }
}

TEST_F(OsTest, BusyCpuHasNoIdle)
{
    BurnLogic hog(10000);
    kernel.createTask("hog", &hog, 0x1);
    eq.runUntil(20'000'000);
    kernel.finalizeIdle(eq.now());
    EXPECT_GT(kernel.core(0).counters.utilization(), 0.95);
}

TEST_F(OsTest, TimerTicksChargeTimerBin)
{
    eq.runUntil(100'000'000); // 50 ms: several 10 ms ticks per CPU
    const auto cycles = kernel.accounting().byBin(
        prof::Bin::Timers, prof::Event::Cycles);
    EXPECT_GT(cycles, 0u);
    // Ticks are hardware interrupts: they flush the pipeline.
    EXPECT_GT(kernel.accounting().byFunc(prof::FuncId::TimerTick,
                                         prof::Event::MachineClears),
              2u);
}

TEST_F(OsTest, TimerListFiresOnArmedCpu)
{
    int fired_on = -1;
    kernel.timers().arm(1, 25'000'000, [&fired_on](ExecContext &ctx) {
        fired_on = ctx.cpuId();
    });
    eq.runUntil(60'000'000);
    EXPECT_EQ(fired_on, 1);
    EXPECT_EQ(kernel.timers().pendingCount(), 0u);
}

TEST_F(OsTest, TimerCancelPreventsFiring)
{
    bool fired = false;
    const TimerId id = kernel.timers().arm(
        0, 25'000'000, [&fired](ExecContext &) { fired = true; });
    EXPECT_TRUE(kernel.timers().armed(id));
    EXPECT_TRUE(kernel.timers().cancel(id));
    EXPECT_FALSE(kernel.timers().cancel(id));
    eq.runUntil(60'000'000);
    EXPECT_FALSE(fired);
}

TEST_F(OsTest, TimerResolutionIsTickGranular)
{
    sim::Tick fired_at = 0;
    kernel.timers().arm(0, 21'000'000, [&fired_at](ExecContext &ctx) {
        fired_at = ctx.proc.dispatchStart();
    });
    eq.runUntil(80'000'000);
    ASSERT_GT(fired_at, 0u);
    EXPECT_GE(fired_at, 21'000'000u);
    // Fires on the next 10ms tick of CPU0.
    EXPECT_LE(fired_at, 21'000'000u + config().timerTickCycles + 100000);
}

TEST_F(OsTest, IrqRoutingFollowsSmpAffinity)
{
    int handled_on = -1;
    int handled_count = 0;
    const int vec = kernel.irqController().registerVector(
        "testdev",
        [&](ExecContext &ctx) {
            handled_on = ctx.cpuId();
            ++handled_count;
            ctx.charge(prof::FuncId::IrqNic0, 50, {}, 1.0, 1);
        },
        prof::FuncId::IrqNic0);

    // Default: CPU0.
    EXPECT_EQ(kernel.irqController().routeOf(vec), 0);
    kernel.irqController().raise(vec);
    eq.runUntil(eq.now() + 100'000);
    EXPECT_EQ(handled_on, 0);

    kernel.irqController().setSmpAffinity(vec, 0x2);
    EXPECT_EQ(kernel.irqController().routeOf(vec), 1);
    kernel.irqController().raise(vec);
    eq.runUntil(eq.now() + 100'000);
    EXPECT_EQ(handled_on, 1);
    EXPECT_EQ(handled_count, 2);
    EXPECT_GT(kernel.core(1).counters.irqsReceived.value(), 0.0);
}

TEST_F(OsTest, RotatingIrqDistributionMovesTargets)
{
    const int vec = kernel.irqController().registerVector(
        "rot", [](ExecContext &) {}, prof::FuncId::IrqNic1);
    // Rotation walks within the smp_affinity mask; open it up to both
    // CPUs so the balancer actually has somewhere to go.
    kernel.irqController().setSmpAffinity(vec, 0x3);
    kernel.irqController().setRotation(1'000'000);
    std::set<sim::CpuId> seen;
    for (int i = 0; i < 10; ++i) {
        seen.insert(kernel.irqController().routeOf(vec));
        eq.runUntil(eq.now() + 1'500'000);
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST_F(OsTest, RotatingIrqDistributionRespectsMask)
{
    // A vector whose policy confines it to CPU1 must stay on CPU1 no
    // matter how long rotation runs.
    const int vec = kernel.irqController().registerVector(
        "rot-pinned", [](ExecContext &) {}, prof::FuncId::IrqNic2);
    kernel.irqController().setSmpAffinity(vec, 0x2);
    kernel.irqController().setRotation(1'000'000);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(kernel.irqController().routeOf(vec), 1);
        eq.runUntil(eq.now() + 1'500'000);
    }
}

TEST_F(OsTest, SoftirqRunsOnRaisingCpu)
{
    int ran_on = -1;
    kernel.processor(1).setSoftirqHandler(
        Softirq::NetRx,
        [&ran_on](ExecContext &ctx) { ran_on = ctx.cpuId(); });
    kernel.processor(1).raiseSoftirq(Softirq::NetRx);
    EXPECT_TRUE(kernel.processor(1).softirqPending(Softirq::NetRx));
    eq.runUntil(eq.now() + 100'000);
    EXPECT_EQ(ran_on, 1);
    EXPECT_FALSE(kernel.processor(1).softirqPending(Softirq::NetRx));
}

TEST_F(OsTest, LoadBalancerPullsFromOverloadedCpu)
{
    // 4 hogs forced to start on CPU0 (allowed everywhere, but created
    // while CPU1 is allowed too; force initial imbalance by pinning
    // then releasing).
    std::vector<std::unique_ptr<BurnLogic>> logics;
    std::vector<Task *> tasks;
    for (int i = 0; i < 4; ++i) {
        logics.push_back(std::make_unique<BurnLogic>(3000));
        tasks.push_back(kernel.createTask(sim::format("h%d", i),
                                          logics.back().get(), 0x1));
    }
    eq.runUntil(2'000'000);
    for (Task *t : tasks)
        t->affinityMask = 0x3; // now allowed on both
    eq.runUntil(60'000'000);
    EXPECT_GT(kernel.scheduler().migrations.value(), 0.0);
    int cpu1_steps = 0;
    for (auto &l : logics)
        cpu1_steps += l->stepsPerCpu[1];
    EXPECT_GT(cpu1_steps, 0) << "balancer never moved work to CPU1";
}

TEST_F(OsTest, WakePrefersIdlePreviousCpu)
{
    WaitQueue wq;
    BurnLogic sleeper(100);
    sleeper.sleepAfter = 3;
    sleeper.wq = &wq;
    kernel.createTask("s", &sleeper, 0x2); // establish prev = CPU1
    eq.runUntil(5'000'000);
    sleeper.sleepAfter = 0;
    // CPU1 idle; wake from CPU0: must stay on CPU1.
    eq.scheduleLambda(eq.now() + 10, "wake", [this, &wq] {
        ExecContext ctx(kernel, kernel.processor(0), nullptr);
        kernel.wakeUpOne(ctx, wq);
    });
    eq.runUntil(eq.now() + 2'000'000);
    EXPECT_EQ(sleeper.lastCpu, 1);
}

} // namespace
