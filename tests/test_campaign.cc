/**
 * @file
 * Campaign engine: parallel determinism, submission-order collection,
 * sweep construction, and the JSON results round trip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <sstream>

#include "src/core/campaign.hh"
#include "src/core/results_json.hh"
#include "src/core/sweep.hh"
#include "src/sim/logging.hh"

using namespace na;

namespace {

core::RunSchedule
tinySchedule()
{
    core::RunSchedule s;
    s.warmup = 2'000'000;   // 1 ms
    s.measure = 10'000'000; // 5 ms
    return s;
}

std::vector<core::CampaignPoint>
tinyPoints()
{
    core::SystemConfig base;
    base.numConnections = 2;
    return core::SweepBuilder()
        .base(base)
        .schedule(tinySchedule())
        .modes({workload::TtcpMode::Transmit,
                workload::TtcpMode::Receive})
        .sizes({1024u, 8192u})
        .affinity(core::AffinityMode::Full)
        .build();
}

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.payloadBytes, b.payloadBytes);
    EXPECT_EQ(a.throughputMbps, b.throughputMbps);
    EXPECT_EQ(a.cpuUtil, b.cpuUtil);
    EXPECT_EQ(a.ghzPerGbps, b.ghzPerGbps);
    EXPECT_EQ(a.irqs, b.irqs);
    EXPECT_EQ(a.ipis, b.ipis);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    for (std::size_t e = 0; e < prof::numEvents; ++e)
        EXPECT_EQ(a.eventTotals[e], b.eventTotals[e]);
    for (std::size_t c = 0; c < a.utilPerCpu.size(); ++c)
        EXPECT_EQ(a.utilPerCpu[c], b.utilPerCpu[c]);
}

TEST(Campaign, PointSeedIsDeterministicAndDistinct)
{
    const std::uint64_t a0 = core::Campaign::pointSeed(42, 0);
    const std::uint64_t a1 = core::Campaign::pointSeed(42, 1);
    const std::uint64_t b0 = core::Campaign::pointSeed(43, 0);
    EXPECT_EQ(a0, core::Campaign::pointSeed(42, 0));
    EXPECT_NE(a0, a1);
    EXPECT_NE(a0, b0);
    EXPECT_NE(a0, 0u);
}

TEST(Campaign, SeedsDeriveFromCampaignSeedAndIndex)
{
    core::Campaign::Options opts;
    opts.numThreads = 1;
    opts.seed = 7;
    const core::ResultSet rs = core::Campaign::run(tinyPoints(), opts);
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs.campaignSeed, 7u);
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(rs.point(i).config.platform.seed,
                  core::Campaign::pointSeed(7, i));
    }
}

TEST(Campaign, ResultsIdenticalAcross1And2And8Threads)
{
    const std::vector<core::CampaignPoint> points = tinyPoints();

    core::Campaign::Options o1;
    o1.numThreads = 1;
    core::Campaign::Options o2;
    o2.numThreads = 2;
    core::Campaign::Options o8;
    o8.numThreads = 8;

    const core::ResultSet r1 = core::Campaign::run(points, o1);
    const core::ResultSet r2 = core::Campaign::run(points, o2);
    const core::ResultSet r8 = core::Campaign::run(points, o8);

    ASSERT_EQ(r1.size(), points.size());
    ASSERT_EQ(r2.size(), points.size());
    ASSERT_EQ(r8.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_GT(r1.result(i).payloadBytes, 0u) << "point " << i;
        expectIdentical(r1.result(i), r2.result(i));
        expectIdentical(r1.result(i), r8.result(i));
    }
}

TEST(Campaign, ResultsKeepSubmissionOrder)
{
    const std::vector<core::CampaignPoint> points = tinyPoints();
    core::Campaign::Options opts;
    opts.numThreads = 4;
    const core::ResultSet rs = core::Campaign::run(points, opts);

    ASSERT_EQ(rs.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(rs.point(i).config.ttcp().msgSize,
                  points[i].config.ttcp().msgSize);
        EXPECT_EQ(rs.point(i).config.ttcp().mode,
                  points[i].config.ttcp().mode);
        EXPECT_EQ(rs.point(i).label, points[i].label);
        // Lookup keyed on (mode, size, affinity) resolves to the same
        // slot as positional access.
        EXPECT_EQ(&rs.at(points[i].config.ttcp().mode,
                         points[i].config.ttcp().msgSize,
                         points[i].config.affinity),
                  &rs.result(i));
    }
}

TEST(Campaign, SystemHookRunsOncePerPointWithItsIndex)
{
    const std::vector<core::CampaignPoint> points = tinyPoints();
    std::vector<std::atomic<int>> calls(points.size());

    core::Campaign::Options opts;
    opts.numThreads = 2;
    opts.systemHook = [&calls](core::System &system,
                               const core::CampaignPoint &point,
                               std::size_t index) {
        EXPECT_EQ(system.config().ttcp().msgSize,
                  point.config.ttcp().msgSize);
        calls.at(index).fetch_add(1);
    };
    core::Campaign::run(points, opts);
    for (std::size_t i = 0; i < calls.size(); ++i)
        EXPECT_EQ(calls[i].load(), 1) << "point " << i;
}

TEST(Campaign, InvalidPointIsRejectedBeforeAnyRun)
{
    std::vector<core::CampaignPoint> points = tinyPoints();
    points[1].config.wireLossProb = 2.0;
    core::Campaign::Options opts;
    opts.numThreads = 2;
    EXPECT_THROW(core::Campaign::run(points, opts), std::runtime_error);
}

TEST(SweepBuilder, CrossesAxesInDeterministicOrder)
{
    const std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .modes({workload::TtcpMode::Transmit,
                    workload::TtcpMode::Receive})
            .sizes({128u, 65536u})
            .affinities(core::allAffinityModes)
            .build();
    ASSERT_EQ(points.size(), 2u * 2u * 4u);
    // Mode outermost, affinity innermost.
    EXPECT_EQ(points[0].config.ttcp().mode, workload::TtcpMode::Transmit);
    EXPECT_EQ(points[0].config.ttcp().msgSize, 128u);
    EXPECT_EQ(points[0].config.affinity, core::AffinityMode::None);
    EXPECT_EQ(points[1].config.affinity, core::AffinityMode::Irq);
    EXPECT_EQ(points[4].config.ttcp().msgSize, 65536u);
    EXPECT_EQ(points[8].config.ttcp().mode, workload::TtcpMode::Receive);
    EXPECT_EQ(points[0].label, "TX 128B No Aff");
}

TEST(SweepBuilder, VariantsOverrideAxesAndExtendLabels)
{
    const std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .mode(workload::TtcpMode::Transmit)
            .size(1024)
            .affinity(core::AffinityMode::None)
            .variant("as-is", [](core::SystemConfig &) {})
            .variant("full+4p",
                     [](core::SystemConfig &cfg) {
                         cfg.affinity = core::AffinityMode::Full;
                         cfg.platform.numCpus = 4;
                     })
            .build();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].config.affinity, core::AffinityMode::None);
    EXPECT_EQ(points[1].config.affinity, core::AffinityMode::Full);
    EXPECT_EQ(points[1].config.platform.numCpus, 4);
    EXPECT_EQ(points[0].label, "TX 1024B No Aff [as-is]");
    // Label reflects the post-variant config.
    EXPECT_EQ(points[1].label, "TX 1024B Full Aff [full+4p]");
}

TEST(ResultsJson, RoundTripsThroughputUtilAndCounters)
{
    core::Campaign::Options opts;
    opts.numThreads = 2;
    opts.seed = 123;
    const core::ResultSet rs = core::Campaign::run(tinyPoints(), opts);

    std::stringstream ss;
    core::writeResultsJson(ss, rs);

    const core::JsonCampaign parsed = core::readResultsJson(ss);
    EXPECT_EQ(parsed.campaignSeed, 123u);
    EXPECT_EQ(parsed.threads, 2);
    ASSERT_EQ(parsed.points.size(), rs.size());

    for (std::size_t i = 0; i < rs.size(); ++i) {
        const core::JsonRunRecord &rec = parsed.points[i];
        const core::CampaignPoint &p = rs.point(i);
        const core::RunResult &r = rs.result(i);

        EXPECT_EQ(rec.label, p.label);
        EXPECT_EQ(rec.mode, p.config.ttcp().mode);
        EXPECT_EQ(rec.msgSize, p.config.ttcp().msgSize);
        EXPECT_EQ(rec.affinity, p.config.affinity);
        EXPECT_EQ(rec.connections, p.config.numConnections);
        EXPECT_EQ(rec.cpus, p.config.platform.numCpus);
        EXPECT_EQ(rec.seed, p.config.platform.seed);
        EXPECT_EQ(rec.steering,
                  std::string(
                      net::steeringKindName(p.config.steering.kind)));
        EXPECT_EQ(rec.queues, p.config.steering.numQueues);

        EXPECT_EQ(rec.result.seconds, r.seconds);
        EXPECT_EQ(rec.result.payloadBytes, r.payloadBytes);
        EXPECT_EQ(rec.result.throughputMbps, r.throughputMbps);
        EXPECT_EQ(rec.result.cpuUtil, r.cpuUtil);
        EXPECT_EQ(rec.result.ghzPerGbps, r.ghzPerGbps);
        EXPECT_EQ(rec.result.irqs, r.irqs);
        EXPECT_EQ(rec.result.ipis, r.ipis);
        EXPECT_EQ(rec.result.migrations, r.migrations);
        EXPECT_EQ(rec.result.contextSwitches, r.contextSwitches);
        for (std::size_t e = 0; e < prof::numEvents; ++e)
            EXPECT_EQ(rec.result.eventTotals[e], r.eventTotals[e]);
        for (int c = 0; c < p.config.platform.numCpus; ++c) {
            EXPECT_EQ(rec.result.utilPerCpu[static_cast<std::size_t>(c)],
                      r.utilPerCpu[static_cast<std::size_t>(c)]);
        }
        ASSERT_EQ(rec.result.rxFramesPerQueue.size(),
                  r.rxFramesPerQueue.size());
        for (std::size_t q = 0; q < r.rxFramesPerQueue.size(); ++q)
            EXPECT_EQ(rec.result.rxFramesPerQueue[q],
                      r.rxFramesPerQueue[q]);
    }
}

TEST(ResultsJson, RoundTripsSteeringPolicyAndQueueCounters)
{
    // A multi-queue RSS point: per-queue frame counts must survive the
    // write/read cycle, as must the policy name and queue count.
    core::SystemConfig base;
    base.numConnections = 2;
    base.platform.numCpus = 2;
    base.steering.kind = net::SteeringKind::Rss;
    base.steering.numQueues = 2;

    std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .base(base)
            .schedule(tinySchedule())
            .mode(workload::TtcpMode::Receive)
            .size(8192)
            .affinity(core::AffinityMode::None)
            .build();

    core::Campaign::Options opts;
    opts.numThreads = 1;
    const core::ResultSet rs = core::Campaign::run(points, opts);

    std::stringstream ss;
    core::writeResultsJson(ss, rs);
    const core::JsonCampaign parsed = core::readResultsJson(ss);

    ASSERT_EQ(parsed.points.size(), 1u);
    const core::JsonRunRecord &rec = parsed.points[0];
    EXPECT_EQ(rec.steering, "rss");
    EXPECT_EQ(rec.queues, 2);
    ASSERT_EQ(rec.result.rxFramesPerQueue.size(), 2u);
    EXPECT_EQ(rec.result.rxFramesPerQueue[0],
              rs.result(0).rxFramesPerQueue[0]);
    EXPECT_EQ(rec.result.rxFramesPerQueue[1],
              rs.result(0).rxFramesPerQueue[1]);
    // RX traffic arrived, and every frame is accounted to some queue.
    EXPECT_GT(rec.result.rxFramesPerQueue[0] +
                  rec.result.rxFramesPerQueue[1],
              0u);
}

TEST(SweepBuilder, SteeringAxisLabelsNonDefaultPolicies)
{
    net::SteeringConfig rss4;
    rss4.kind = net::SteeringKind::Rss;
    rss4.numQueues = 4;
    const std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .mode(workload::TtcpMode::Transmit)
            .size(1024)
            .affinity(core::AffinityMode::None)
            .steerings({net::SteeringConfig{}, rss4})
            .build();
    ASSERT_EQ(points.size(), 2u);
    // The paper's own policy stays unlabelled (existing label-keyed
    // lookups depend on it); non-default policies are called out.
    EXPECT_EQ(points[0].label, "TX 1024B No Aff");
    EXPECT_EQ(points[1].label, "TX 1024B No Aff rss:4q");
    EXPECT_EQ(points[1].config.steering.kind, net::SteeringKind::Rss);
    EXPECT_EQ(points[1].config.steering.numQueues, 4);
}

TEST(ResultsJson, RoundTripsIntervalSeries)
{
    // One point with interval stats armed: the v3 "intervals" block
    // must survive the write/read cycle window for window.
    core::SystemConfig base;
    base.numConnections = 2;
    base.statsIntervalUs = 500.0;

    std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .base(base)
            .schedule(tinySchedule())
            .mode(workload::TtcpMode::Transmit)
            .size(4096)
            .affinity(core::AffinityMode::Full)
            .build();

    core::Campaign::Options opts;
    opts.numThreads = 1;
    const core::ResultSet rs = core::Campaign::run(points, opts);
    const prof::IntervalSeries &orig = rs.result(0).intervals;
    ASSERT_FALSE(orig.empty());

    std::stringstream ss;
    core::writeResultsJson(ss, rs);
    const core::JsonCampaign parsed = core::readResultsJson(ss);
    ASSERT_EQ(parsed.points.size(), 1u);
    const prof::IntervalSeries &got = parsed.points[0].result.intervals;

    EXPECT_EQ(got.intervalTicks, orig.intervalTicks);
    EXPECT_EQ(got.numCpus, orig.numCpus);
    EXPECT_EQ(got.numQueues, orig.numQueues);
    ASSERT_EQ(got.windows.size(), orig.windows.size());
    for (std::size_t w = 0; w < orig.windows.size(); ++w) {
        EXPECT_EQ(got.windows[w].start, orig.windows[w].start);
        EXPECT_EQ(got.windows[w].end, orig.windows[w].end);
        EXPECT_EQ(got.windows[w].binDeltas, orig.windows[w].binDeltas);
        EXPECT_EQ(got.windows[w].rxFramesPerQueue,
                  orig.windows[w].rxFramesPerQueue);
    }

    // A v2 document (no intervals block) still parses, with an empty
    // series.
    std::stringstream v2(
        "{\"schema_version\": 2, \"campaign_seed\": 1, \"threads\": 1, "
        "\"points\": []}");
    EXPECT_EQ(core::readResultsJson(v2).points.size(), 0u);
}

TEST(ResultsJson, RoundTripSurvivesCommaDecimalLocale)
{
    // Under a comma-decimal LC_NUMERIC, printf("%.17g") writes "0,5"
    // and std::stod reads it back as 0 — the old implementation
    // corrupted every double in the file. std::to_chars/from_chars
    // ignore the locale entirely.
    const char *old = std::setlocale(LC_NUMERIC, nullptr);
    const std::string saved = old ? old : "C";
    if (!std::setlocale(LC_NUMERIC, "de_DE.UTF-8") &&
        !std::setlocale(LC_NUMERIC, "de_DE")) {
        GTEST_SKIP() << "no comma-decimal locale installed";
    }

    core::Campaign::Options opts;
    opts.numThreads = 1;
    opts.seed = 7;
    std::vector<core::CampaignPoint> points = tinyPoints();
    points.resize(1);
    const core::ResultSet rs = core::Campaign::run(points, opts);

    std::stringstream ss;
    core::writeResultsJson(ss, rs);
    core::JsonCampaign parsed;
    try {
        parsed = core::readResultsJson(ss);
    } catch (...) {
        std::setlocale(LC_NUMERIC, saved.c_str());
        throw;
    }
    std::setlocale(LC_NUMERIC, saved.c_str());

    ASSERT_EQ(parsed.points.size(), 1u);
    const core::RunResult &r = rs.result(0);
    const core::RunResult &got = parsed.points[0].result;
    EXPECT_EQ(got.seconds, r.seconds);
    EXPECT_EQ(got.throughputMbps, r.throughputMbps);
    EXPECT_EQ(got.cpuUtil, r.cpuUtil);
    EXPECT_EQ(got.ghzPerGbps, r.ghzPerGbps);
    ASSERT_GT(r.cpuUtil, 0.0); // a zero would mask the stod failure
}

TEST(ResultsJson, RejectsMalformedInput)
{
    std::stringstream notJson("this is not json");
    EXPECT_THROW(core::readResultsJson(notJson), std::runtime_error);

    std::stringstream wrongVersion(
        "{\"schema_version\": 99, \"campaign_seed\": 0, \"threads\": 1, "
        "\"points\": []}");
    EXPECT_THROW(core::readResultsJson(wrongVersion), std::runtime_error);
}

TEST(ResultSet, LookupFailuresAreDescriptive)
{
    core::Campaign::Options opts;
    opts.numThreads = 1;
    std::vector<core::CampaignPoint> points = tinyPoints();
    points.resize(1);
    const core::ResultSet rs = core::Campaign::run(points, opts);
    EXPECT_EQ(rs.find(workload::TtcpMode::Transmit, 999,
                      core::AffinityMode::Full),
              nullptr);
    EXPECT_THROW(rs.at(workload::TtcpMode::Transmit, 999,
                       core::AffinityMode::Full),
                 std::runtime_error);
    EXPECT_EQ(rs.findLabel("nope"), nullptr);
    EXPECT_THROW(rs.at("nope"), std::runtime_error);
}

} // namespace
