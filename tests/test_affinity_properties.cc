/**
 * @file
 * Property tests over the full experiment pipeline: invariants that
 * must hold for every (mode, size, direction) combination, plus the
 * paper's headline orderings.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/experiment.hh"

using namespace na;
using namespace na::core;

namespace {

RunSchedule
quickSchedule()
{
    RunSchedule s;
    s.warmup = 20'000'000;  // 10 ms
    s.measure = 40'000'000; // 20 ms
    return s;
}

using Combo = std::tuple<workload::TtcpMode, std::uint32_t, AffinityMode>;

class AffinityProperty : public ::testing::TestWithParam<Combo>
{
};

TEST_P(AffinityProperty, RunInvariantsHold)
{
    const auto [mode, size, aff] = GetParam();
    SystemConfig cfg;
    cfg.ttcp().mode = mode;
    cfg.ttcp().msgSize = size;
    cfg.affinity = aff;

    System sys(cfg);
    const RunResult r = Experiment::measure(sys, quickSchedule());

    // Work happened and was measured.
    EXPECT_GT(r.throughputMbps, 50.0);
    EXPECT_GT(r.payloadBytes, 0u);
    EXPECT_NEAR(r.seconds, 0.02, 0.001);

    // Utilization is a fraction, and the box is essentially saturated.
    for (int c = 0; c < cfg.platform.numCpus; ++c) {
        EXPECT_GE(r.utilPerCpu[static_cast<std::size_t>(c)], 0.0);
        EXPECT_LE(r.utilPerCpu[static_cast<std::size_t>(c)], 1.0);
    }
    EXPECT_GT(r.cpuUtil, 0.5);

    // Per-bin cycles sum to the overall cycles.
    std::uint64_t bin_cycles = 0;
    for (const auto &b : r.bins)
        bin_cycles += b.cycles;
    EXPECT_EQ(bin_cycles, r.overall.cycles);

    // Accounted cycles equal measured busy time (within dispatch slop).
    double busy = 0;
    for (int c = 0; c < cfg.platform.numCpus; ++c) {
        busy += r.utilPerCpu[static_cast<std::size_t>(c)] *
                static_cast<double>(quickSchedule().measure);
    }
    EXPECT_NEAR(static_cast<double>(r.overall.cycles), busy,
                busy * 0.02);

    // Event sanity.
    EXPECT_LE(r.overall.brMispredicts, r.overall.branches);
    EXPECT_LE(r.overall.branches, r.overall.instructions);
    EXPECT_GT(r.overall.cpi, 1.0);
    EXPECT_LT(r.overall.cpi, 60.0);
    EXPECT_GT(r.ghzPerGbps, 0.1);

    // Affinity masks honored.
    if (pinsProcs(aff)) {
        for (int i = 0; i < sys.numConnections(); ++i) {
            EXPECT_EQ(sys.task(i).lastRanCpu, sys.cpuForConn(i))
                << "task " << i << " escaped its pin";
        }
    }
    if (pinsIrqs(aff)) {
        for (int i = 0; i < sys.numConnections(); ++i) {
            EXPECT_EQ(sys.kernel().irqController().routeOf(
                          sys.nic(i).irqVector()),
                      sys.cpuForConn(i));
        }
    }

    // Conservation at the sinks.
    if (mode == workload::TtcpMode::Transmit) {
        for (int i = 0; i < sys.numConnections(); ++i) {
            EXPECT_LE(sys.peer(i).bytesReceived(),
                      sys.socket(i).tcp().appendedBytes());
        }
    }

    // Full affinity on a block layout: no cross-CPU wakeups at all.
    if (aff == AffinityMode::Full) {
        EXPECT_EQ(r.ipis, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AffinityProperty,
    ::testing::Combine(
        ::testing::Values(workload::TtcpMode::Transmit,
                          workload::TtcpMode::Receive),
        ::testing::Values(128u, 4096u, 65536u),
        ::testing::Values(AffinityMode::None, AffinityMode::Irq,
                          AffinityMode::Proc, AffinityMode::Full)),
    [](const ::testing::TestParamInfo<Combo> &info) {
        const workload::TtcpMode mode = std::get<0>(info.param);
        const std::uint32_t size = std::get<1>(info.param);
        const AffinityMode aff = std::get<2>(info.param);
        std::string name =
            mode == workload::TtcpMode::Transmit ? "TX" : "RX";
        name += std::to_string(size);
        switch (aff) {
          case AffinityMode::None: name += "_none"; break;
          case AffinityMode::Irq:  name += "_irq"; break;
          case AffinityMode::Proc: name += "_proc"; break;
          case AffinityMode::Full: name += "_full"; break;
        }
        return name;
    });

TEST(AffinityProperty, RotationNeverLeavesProvisionedMask)
{
    // 2.6-style IRQ rotation walks the *allowed* set, not all CPUs: a
    // vector must never be routed to a CPU outside the mask its
    // steering policy provisioned, no matter how long rotation runs.
    SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.platform.numCpus = 4;
    cfg.ttcp().mode = workload::TtcpMode::Receive;
    cfg.ttcp().msgSize = 65536;
    cfg.affinity = AffinityMode::None;
    cfg.irqRotationTicks = 500'000;
    cfg.steering.kind = net::SteeringKind::Rss;
    cfg.steering.numQueues = 2;
    cfg.steering.queueCpus = {1, 3}; // deliberately not CPU0

    System sys(cfg);
    sys.runFor(2'000'000); // let traffic and rotation epochs start

    for (int step = 0; step < 12; ++step) {
        sys.runFor(750'000); // deliberately not a multiple of the epoch
        for (int i = 0; i < sys.numConnections(); ++i) {
            for (int q = 0; q < sys.nic(i).numRxQueues(); ++q) {
                const int vec = sys.nic(i).queueVector(q);
                const std::uint32_t mask =
                    sys.steering().vectorAffinity(i, q);
                const sim::CpuId cpu =
                    sys.kernel().irqController().routeOf(vec);
                EXPECT_NE(mask & (1u << cpu), 0u)
                    << "nic " << i << " queue " << q << " routed to CPU "
                    << static_cast<int>(cpu) << " outside mask 0x"
                    << std::hex << mask << " at step " << std::dec
                    << step;
            }
        }
    }
}

TEST(AffinityOrdering, PaperHeadlinesAt64KbTx)
{
    // The paper's central result: Full > IRQ > {Proc ~ None} on
    // throughput; full affinity cuts the cost metric substantially.
    std::array<RunResult, 4> r;
    int i = 0;
    for (AffinityMode m : allAffinityModes) {
        SystemConfig cfg;
        cfg.ttcp().mode = workload::TtcpMode::Transmit;
        cfg.ttcp().msgSize = 65536;
        cfg.affinity = m;
        r[static_cast<std::size_t>(i++)] =
            Experiment::run(cfg, quickSchedule());
    }
    const RunResult &none = r[0];
    const RunResult &irq = r[1];
    const RunResult &proc = r[2];
    const RunResult &full = r[3];

    // Full affinity wins big (paper: ~29-30%).
    EXPECT_GT(full.throughputMbps, none.throughputMbps * 1.12);
    // IRQ affinity alone captures most of the gain (paper: up to 25%).
    EXPECT_GT(irq.throughputMbps, none.throughputMbps * 1.08);
    EXPECT_GE(full.throughputMbps, irq.throughputMbps * 0.97);
    // Process affinity alone is a wash (paper: "little impact").
    EXPECT_NEAR(proc.throughputMbps / none.throughputMbps, 1.0, 0.08);
    // Cost falls with full affinity.
    EXPECT_LT(full.ghzPerGbps, none.ghzPerGbps * 0.92);
}

TEST(AffinityOrdering, FullAffinityCutsClearsAndMissesPerByte)
{
    SystemConfig cfg;
    cfg.ttcp().mode = workload::TtcpMode::Transmit;
    cfg.ttcp().msgSize = 65536;
    cfg.affinity = AffinityMode::None;
    const RunResult none = Experiment::run(cfg, quickSchedule());
    cfg.affinity = AffinityMode::Full;
    const RunResult full = Experiment::run(cfg, quickSchedule());

    EXPECT_LT(full.eventsPerByte(prof::Event::MachineClears),
              none.eventsPerByte(prof::Event::MachineClears));
    EXPECT_LT(full.eventsPerByte(prof::Event::LlcMisses),
              none.eventsPerByte(prof::Event::LlcMisses));
    // No affinity pays for cross-CPU wakeups with IPIs.
    EXPECT_GT(none.ipis, 0u);
}

TEST(AffinityOrdering, CostFallsWithTransferSize)
{
    // Fig 4's monotone shape: per-bit cost shrinks as messages grow.
    double last = 1e9;
    for (std::uint32_t size : {128u, 1024u, 8192u, 65536u}) {
        SystemConfig cfg;
        cfg.ttcp().mode = workload::TtcpMode::Transmit;
        cfg.ttcp().msgSize = size;
        cfg.affinity = AffinityMode::Full;
        const RunResult r = Experiment::run(cfg, quickSchedule());
        EXPECT_LT(r.ghzPerGbps, last)
            << "cost not monotone at size " << size;
        last = r.ghzPerGbps;
    }
}

TEST(AffinityOrdering, DeterministicGivenSeed)
{
    SystemConfig cfg;
    cfg.ttcp().mode = workload::TtcpMode::Transmit;
    cfg.ttcp().msgSize = 8192;
    cfg.affinity = AffinityMode::None;
    const RunResult a = Experiment::run(cfg, quickSchedule());
    const RunResult b = Experiment::run(cfg, quickSchedule());
    EXPECT_EQ(a.payloadBytes, b.payloadBytes);
    EXPECT_EQ(a.overall.cycles, b.overall.cycles);
    EXPECT_EQ(a.eventTotals, b.eventTotals);

    cfg.platform.seed = 777;
    const RunResult c = Experiment::run(cfg, quickSchedule());
    EXPECT_NE(a.overall.cycles, c.overall.cycles);
}

TEST(AffinityOrdering, RxShowsCpu0BottleneckWithoutAffinity)
{
    SystemConfig cfg;
    cfg.ttcp().mode = workload::TtcpMode::Receive;
    cfg.ttcp().msgSize = 65536;
    cfg.affinity = AffinityMode::None;
    const RunResult r = Experiment::run(cfg, quickSchedule());
    // CPU0 carries all interrupt+softirq work: it must be the hotter
    // CPU (paper Section 5 / the 4P discussion).
    EXPECT_GE(r.utilPerCpu[0], r.utilPerCpu[1]);
}

} // namespace
