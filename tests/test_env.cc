/**
 * @file
 * env helper: the single implementation of NA_* knob parsing, and the
 * strict NA_CAMPAIGN_THREADS handling in Campaign::resolveThreads.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/core/campaign.hh"
#include "src/core/env.hh"

using namespace na;

namespace {

/** RAII setenv/unsetenv so a failing test cannot leak a knob into the
 *  rest of the suite. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : varName(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(varName); }

  private:
    const char *varName;
};

constexpr const char *var = "NA_TEST_ENV_KNOB";

TEST(Env, StrAbsentAndPresent)
{
    ::unsetenv(var);
    EXPECT_EQ(core::env::raw(var), nullptr);
    EXPECT_FALSE(core::env::str(var).has_value());

    ScopedEnv guard(var, "hello");
    ASSERT_TRUE(core::env::str(var).has_value());
    EXPECT_EQ(*core::env::str(var), "hello");
    EXPECT_STREQ(core::env::raw(var), "hello");
}

TEST(Env, FlagSemantics)
{
    ::unsetenv(var);
    EXPECT_FALSE(core::env::flag(var));
    {
        ScopedEnv guard(var, "");
        EXPECT_FALSE(core::env::flag(var));
    }
    {
        ScopedEnv guard(var, "0");
        EXPECT_FALSE(core::env::flag(var));
    }
    {
        ScopedEnv guard(var, "1");
        EXPECT_TRUE(core::env::flag(var));
    }
    {
        ScopedEnv guard(var, "yes");
        EXPECT_TRUE(core::env::flag(var));
    }
}

TEST(Env, IntValueParsesWholeString)
{
    ::unsetenv(var);
    EXPECT_FALSE(core::env::intValue(var).has_value());
    {
        ScopedEnv guard(var, "42");
        ASSERT_TRUE(core::env::intValue(var).has_value());
        EXPECT_EQ(*core::env::intValue(var), 42);
    }
    {
        // Negative values parse; whether they are *valid* is the
        // caller's policy.
        ScopedEnv guard(var, "-3");
        ASSERT_TRUE(core::env::intValue(var).has_value());
        EXPECT_EQ(*core::env::intValue(var), -3);
    }
}

TEST(Env, IntValueThrowsOnGarbage)
{
    for (const char *bad : {"abc", "4x", "", " 4", "4 ", "0x10",
                            "999999999999999999999999"}) {
        ScopedEnv guard(var, bad);
        EXPECT_THROW((void)core::env::intValue(var),
                     std::runtime_error)
            << "value '" << bad << "' should not parse";
    }
}

TEST(Env, IntValueErrorNamesVariableAndValue)
{
    ScopedEnv guard(var, "4x");
    try {
        (void)core::env::intValue(var);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(var), std::string::npos) << msg;
        EXPECT_NE(msg.find("4x"), std::string::npos) << msg;
    }
}

TEST(ResolveThreads, ExplicitRequestWinsOverEnvironment)
{
    ScopedEnv guard("NA_CAMPAIGN_THREADS", "7");
    EXPECT_EQ(core::Campaign::resolveThreads(3), 3);
}

TEST(ResolveThreads, ReadsEnvironmentWhenAuto)
{
    ScopedEnv guard("NA_CAMPAIGN_THREADS", "5");
    EXPECT_EQ(core::Campaign::resolveThreads(0), 5);
}

TEST(ResolveThreads, ExplicitZeroMeansAuto)
{
    ScopedEnv guard("NA_CAMPAIGN_THREADS", "0");
    EXPECT_GE(core::Campaign::resolveThreads(0), 1);
}

TEST(ResolveThreads, RejectsTrailingJunk)
{
    // The old std::atoi path silently read "4x" as 4 and "abc" as 0;
    // both are now hard errors.
    for (const char *bad : {"4x", "abc", ""}) {
        ScopedEnv guard("NA_CAMPAIGN_THREADS", bad);
        EXPECT_THROW((void)core::Campaign::resolveThreads(0),
                     std::runtime_error)
            << "NA_CAMPAIGN_THREADS='" << bad << "'";
    }
}

TEST(ResolveThreads, RejectsNegativeWithClearError)
{
    ScopedEnv guard("NA_CAMPAIGN_THREADS", "-2");
    try {
        (void)core::Campaign::resolveThreads(0);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("NA_CAMPAIGN_THREADS"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
    }
}

TEST(ResolveThreads, AutoWithoutEnvironmentIsPositive)
{
    ::unsetenv("NA_CAMPAIGN_THREADS");
    EXPECT_GE(core::Campaign::resolveThreads(0), 1);
}

} // namespace
