/**
 * @file
 * Unit tests for the CPU core charge engine: cycle roll-up, event
 * accounting, machine-clear mechanics, branch model, code-side costs.
 */

#include <gtest/gtest.h>

#include "src/cpu/core.hh"
#include "src/prof/accounting.hh"

using namespace na;
using namespace na::cpu;

namespace {

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : acct(2), domain(cfg().memTiming)
    {
        core0 = std::make_unique<Core>(&root, "cpu0", 0, config, domain,
                                       acct);
        core1 = std::make_unique<Core>(&root, "cpu1", 1, config, domain,
                                       acct);
        core0->setPeers({core0.get(), core1.get()});
        core1->setPeers({core0.get(), core1.get()});
        core0->beginDispatch();
        core1->beginDispatch();
    }

    static PlatformConfig
    cfg()
    {
        PlatformConfig c;
        return c;
    }

    stats::Group root{nullptr, ""};
    PlatformConfig config = cfg();
    prof::BinAccounting acct;
    mem::SnoopDomain domain;
    std::unique_ptr<Core> core0;
    std::unique_ptr<Core> core1;

    static constexpr sim::Addr dataAddr =
        static_cast<sim::Addr>(mem::Region::KernelData) * (1ULL << 30);
};

TEST_F(CoreTest, PlainChargeRollsUpCycles)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 1000;
    const ChargeResult r = core0->charge(spec);
    const prof::FuncDesc &d = prof::funcDesc(prof::FuncId::TcpAck);
    // At least base CPI worth of cycles, plus code-side costs.
    EXPECT_GE(r.cycles, static_cast<sim::Tick>(1000 * d.baseCpi));
    EXPECT_EQ(core0->dispatchCycles(), r.cycles);
    EXPECT_EQ(acct.get(0, prof::FuncId::TcpAck,
                       prof::Event::Instructions),
              1000u);
    EXPECT_EQ(acct.get(0, prof::FuncId::TcpAck, prof::Event::Cycles),
              r.cycles);
    EXPECT_DOUBLE_EQ(core0->counters.instructions.value(), 1000.0);
}

TEST_F(CoreTest, SerializeCyclesAreCharged)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::SysWrite; // has serializeCycles
    spec.instructions = 10;
    const ChargeResult r = core0->charge(spec);
    EXPECT_GE(r.cycles,
              prof::funcDesc(prof::FuncId::SysWrite).serializeCycles);
}

TEST_F(CoreTest, MemoryTouchesProduceMisses)
{
    cpu::MemTouch t{dataAddr, 256, false};
    ChargeSpec spec;
    spec.func = prof::FuncId::CopyToUser;
    spec.instructions = 100;
    spec.touches = std::span<const cpu::MemTouch>(&t, 1);
    const ChargeResult r = core0->charge(spec);
    EXPECT_EQ(r.llcMisses, 4u); // 256B cold = 4 lines
    EXPECT_EQ(acct.get(0, prof::FuncId::CopyToUser,
                       prof::Event::LlcMisses),
              4u);
    // Second access: warm.
    const ChargeResult r2 = core0->charge(spec);
    EXPECT_EQ(r2.llcMisses, 0u);
    EXPECT_LT(r2.cycles, r.cycles);
}

TEST_F(CoreTest, BranchDefaultsFollowBranchFrac)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 10000;
    core0->charge(spec);
    const double expected =
        10000 * prof::funcDesc(prof::FuncId::TcpAck).branchFrac;
    EXPECT_NEAR(core0->counters.branches.value(), expected, 1.0);
}

TEST_F(CoreTest, BranchOverridesRespected)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::LockSock;
    spec.instructions = 100;
    spec.branchesOverride = 37;
    spec.mispredictsOverride = 5;
    core0->charge(spec);
    EXPECT_DOUBLE_EQ(core0->counters.branches.value(), 37.0);
    EXPECT_DOUBLE_EQ(core0->counters.brMispredicts.value(), 5.0);
}

TEST_F(CoreTest, MispredictsNeverExceedBranches)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 3; // ~0 branches
    for (int i = 0; i < 200; ++i)
        core0->charge(spec);
    EXPECT_LE(core0->counters.brMispredicts.value(),
              core0->counters.branches.value());
}

TEST_F(CoreTest, AsyncClearsCountAndCost)
{
    ChargeSpec base;
    base.func = prof::FuncId::IrqNic0;
    base.instructions = 50;
    core0->charge(base); // warm code

    const double clears_before = core0->counters.machineClears.value();
    ChargeSpec spec = base;
    spec.asyncClears = 3;
    core0->charge(spec);
    EXPECT_GE(core0->counters.machineClears.value(),
              clears_before + 3.0);
    EXPECT_GE(acct.get(0, prof::FuncId::IrqNic0,
                       prof::Event::MachineClears),
              3u);
}

TEST_F(CoreTest, IntrinsicClearsScaleWithInstructions)
{
    // Copies has the highest intrinsic clear rate.
    ChargeSpec spec;
    spec.func = prof::FuncId::CopyFromUser;
    spec.instructions = 100000;
    double clears = 0;
    for (int i = 0; i < 20; ++i)
        clears += static_cast<double>(core0->charge(spec).machineClears);
    const double expected =
        20 * 100000 *
        config.intrinsicClearsPerKInstr[static_cast<std::size_t>(
            prof::Bin::Copies)] /
        1000.0;
    EXPECT_NEAR(clears, expected, expected * 0.2);
}

TEST_F(CoreTest, StealNotifiesBusyVictim)
{
    // CPU1 caches a line and is busy.
    core1->setBusy(true);
    cpu::MemTouch t{dataAddr + 4096, 64, true};
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 10;
    spec.touches = std::span<const cpu::MemTouch>(&t, 1);
    core1->charge(spec);

    // CPU0 writes the same line many times; victim clears appear with
    // probability orderingClearProb per steal.
    const double before = core1->counters.machineClears.value();
    int steals = 0;
    for (int i = 0; i < 400; ++i) {
        core1->charge(spec); // re-own on CPU1
        const ChargeResult r = core0->charge(spec);
        steals += static_cast<int>(r.stolenFrom[1]);
    }
    ASSERT_GT(steals, 300);
    const double delta =
        core1->counters.machineClears.value() - before;
    // Expect ~= steals * p (intrinsic clears for these tiny charges
    // are negligible but allow slack).
    EXPECT_NEAR(delta, steals * config.orderingClearProb,
                steals * 0.15);
}

TEST_F(CoreTest, IdleVictimTakesNoOrderingClears)
{
    core1->setBusy(true);
    cpu::MemTouch t{dataAddr + 8192, 64, true};
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 10;
    spec.touches = std::span<const cpu::MemTouch>(&t, 1);
    core1->charge(spec);
    core1->setBusy(false);

    const double before = core1->counters.machineClears.value();
    core0->charge(spec); // steals from idle CPU1
    EXPECT_EQ(core1->counters.machineClears.value(), before);
}

TEST_F(CoreTest, IpiClearAttributedToCurrentFunction)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpRcvEst;
    spec.instructions = 100;
    core0->charge(spec);
    core0->setBusy(true);
    const auto before = acct.get(0, prof::FuncId::TcpRcvEst,
                                 prof::Event::MachineClears);
    core0->postIpiClear();
    EXPECT_EQ(acct.get(0, prof::FuncId::TcpRcvEst,
                       prof::Event::MachineClears),
              before + 1);
    EXPECT_EQ(core0->currentFunc(), prof::FuncId::TcpRcvEst);
}

TEST_F(CoreTest, PendingClearPenaltyLandsOnNextCharge)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 100;
    core0->charge(spec);
    const sim::Tick clean = core0->charge(spec).cycles;
    core0->setBusy(true);
    core0->postIpiClear();
    const sim::Tick with_penalty = core0->charge(spec).cycles;
    EXPECT_GE(with_penalty, clean + config.clearPenaltyEffective);
}

TEST_F(CoreTest, CodeSideCostsColdThenWarm)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpRcvEst;
    spec.instructions = 10;
    core0->charge(spec);
    EXPECT_GT(core0->counters.tcMisses.value(), 0.0);
    EXPECT_GT(core0->counters.itlbMisses.value(), 0.0);
    const double tc = core0->counters.tcMisses.value();
    core0->charge(spec); // warm now
    EXPECT_EQ(core0->counters.tcMisses.value(), tc);
}

TEST_F(CoreTest, DtlbWalksOnNewPages)
{
    cpu::MemTouch t{dataAddr + (50ULL << 12), 8192, false};
    ChargeSpec spec;
    spec.func = prof::FuncId::CopyToUser;
    spec.instructions = 10;
    spec.touches = std::span<const cpu::MemTouch>(&t, 1);
    core0->charge(spec);
    EXPECT_GE(core0->counters.dtlbMisses.value(), 2.0); // 8KB = 2+ pages
}

TEST_F(CoreTest, IdleCyclesTrackedSeparately)
{
    core0->addIdleCycles(12345);
    EXPECT_DOUBLE_EQ(core0->counters.idleCycles.value(), 12345.0);
    EXPECT_DOUBLE_EQ(core0->counters.busyCycles.value(), 0.0);
    EXPECT_DOUBLE_EQ(core0->counters.utilization(), 0.0);
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 100;
    core0->charge(spec);
    EXPECT_GT(core0->counters.utilization(), 0.0);
    EXPECT_LT(core0->counters.utilization(), 1.0);
}

TEST_F(CoreTest, BeginDispatchResetsAccumulator)
{
    ChargeSpec spec;
    spec.func = prof::FuncId::TcpAck;
    spec.instructions = 100;
    core0->charge(spec);
    EXPECT_GT(core0->dispatchCycles(), 0u);
    core0->beginDispatch();
    EXPECT_EQ(core0->dispatchCycles(), 0u);
}

TEST_F(CoreTest, ExtraCyclesAddDirectly)
{
    ChargeSpec a;
    a.func = prof::FuncId::LockSock;
    a.instructions = 10;
    a.branchesOverride = 0;
    a.mispredictsOverride = 0;
    core0->charge(a); // warm the code side
    const sim::Tick base = core0->charge(a).cycles;
    a.extraCycles = 5000;
    EXPECT_EQ(core0->charge(a).cycles, base + 5000);
}

} // namespace
