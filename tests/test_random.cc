/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "src/sim/random.hh"

using namespace na::sim;

namespace {

TEST(Random, SameSeedSameStream)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Random, ReseedRestartsStream)
{
    Random a(9);
    const std::uint64_t first = a.next();
    a.next();
    a.seed(9);
    EXPECT_EQ(a.next(), first);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, RangeIsInclusive)
{
    Random r(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = r.range(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RangeSingleValue)
{
    Random r(13);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.range(42, 42), 42u);
}

TEST(RandomDeath, RangeRejectsInvertedBounds)
{
    Random r(1);
    EXPECT_DEATH(r.range(5, 4), "lo");
}

TEST(Random, ChanceExtremes)
{
    Random r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Random, ChanceFrequency)
{
    Random r(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Random, ExponentialMean)
{
    Random r(23);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double v = r.exponential(50.0);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 50.0, 2.5);
}

} // namespace
