/**
 * @file
 * Receive-path reordering: the socket-layer fixes that used to mask
 * the Flow Director pathology, the Eifel spurious-retransmit
 * classifier, the sender-hop migration driver, and the schema-v6
 * "reorder" result block.
 *
 *  - promoteInOrder's explicit promoted-floor flag: a peer ISN at the
 *    top of the 64-bit space makes the first payload sequence number
 *    exactly 0, which the old 0-sentinel treated as "handshake not
 *    done" and never promoted.
 *  - Slot-exact skb accounting when out-of-order stash entries
 *    duplicate, overlap, or supersede each other (the double-charge
 *    fix).
 *  - Single-forward-pass in-order delivery: adversarial arrival
 *    orders all converge to byte-exact delivery.
 *  - Eifel: a fast retransmit whose gap is filled by the delayed
 *    original (old TSval echoed) is classified spurious; one whose
 *    retransmission fills the gap itself (genuine loss) never is.
 *    Karn's rule holds across the ambiguous ACK either way.
 *  - sim::FaultPlan reorder injection composes with the counters and
 *    stays seeded-deterministic end to end.
 *  - workload::FlowMixConfig::senderHopTicks forces deterministic
 *    task migrations and is off (zero hops) by default.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "src/core/experiment.hh"
#include "src/core/results_json.hh"
#include "src/core/system.hh"
#include "src/net/driver.hh"
#include "src/net/nic.hh"
#include "src/net/socket.hh"
#include "src/net/wire.hh"
#include "src/os/exec_context.hh"
#include "src/os/kernel.hh"

using namespace na;
using namespace na::net;

namespace {

/** Establish a pair by direct segment exchange at a given tick. */
void
establishPair(TcpConnection &a, TcpConnection &b, sim::Tick now)
{
    a.openActive();
    b.openPassive();
    std::vector<Segment> syn = a.pullSegments(now);
    std::vector<Segment> synack;
    b.onSegment(syn.at(0), now, synack);
    std::vector<Segment> ack;
    a.onSegment(synack.at(0), now, ack);
    std::vector<Segment> none;
    b.onSegment(ack.at(0), now, none);
    ASSERT_EQ(a.state(), TcpState::Established);
}

/** Deliver @p seg to @p b, collecting any immediate replies. */
std::vector<Segment>
deliver(TcpConnection &b, const Segment &seg, sim::Tick now)
{
    std::vector<Segment> replies;
    b.onSegment(seg, now, replies);
    b.consume(b.readableBytes()); // keep the window open
    return replies;
}

TcpConfig
bulkConfig()
{
    TcpConfig cfg;
    cfg.rtoTicks = 100'000'000; // keep the RTO timer out of the play
    cfg.initialCwndSegs = 64;
    cfg.sndBufBytes = 256 * 1024;
    cfg.rcvWndBytes = 256 * 1024;
    return cfg;
}

/**
 * Hand-built one-socket SUT rig driven entirely from softirq context:
 * frames are injected straight into Socket::onSegmentSoftirq with
 * pool-allocated skbs, so the tests can meter the slab slot-exactly.
 * Side B of the wire is a sink — the socket's own transmissions
 * (SYN-ACK, dup ACKs, window updates) leave and are TX-completed, but
 * nothing answers.
 */
class SocketRigTest : public ::testing::Test
{
  protected:
    SocketRigTest()
        : kernel(&root, eq, cpu::PlatformConfig{}),
          pool(&root, kernel, 1024),
          driver(&root, kernel, pool),
          wire(&root, "wire", eq, 2.0e9, 1.0e9, 10'000),
          nic(&root, "nic", 0, kernel, pool, wire),
          socket(&root, "sock", kernel, driver, pool, connFlowKey(0)),
          ctx(kernel, kernel.processor(0), nullptr),
          userBuf(kernel.addressSpace().alloc(mem::Region::UserData,
                                              65536))
    {
        driver.attachNic(nic);
        driver.bindSocket(socket, nic);
        wire.attachB([](const Packet &) {});
        socket.setNonBlocking(true); // recv == EAGAIN, never sleeps
    }

    /** Run the event queue so in-flight control skbs TX-complete. */
    void
    settle(sim::Tick ticks = 5'000'000)
    {
        eq.runUntil(eq.now() + ticks);
    }

    /** Server-side handshake against a synthetic client at @p isn. */
    void
    establishAt(std::uint64_t isn)
    {
        socket.beginPassive();
        Packet syn;
        syn.flow = connFlowKey(0);
        syn.seg.seq = isn;
        syn.seg.flags = flagSyn;
        syn.seg.wnd = 64 * 1024;
        socket.onSegmentSoftirq(ctx, syn, pool.alloc(ctx));

        Packet ack;
        ack.flow = connFlowKey(0);
        ack.seg.seq = isn + 1; // wraps to 0 for isn == ~0
        ack.seg.ack = 2;       // covers the SUT's SYN (iss 1)
        ack.seg.flags = flagAck;
        ack.seg.wnd = 64 * 1024;
        socket.onSegmentSoftirq(ctx, ack, pool.alloc(ctx));
        ASSERT_TRUE(socket.established());
        settle();
    }

    /** Inject one data frame carrying [seq, seq+len). */
    void
    injectData(std::uint64_t seq, std::uint32_t len)
    {
        Packet pkt;
        pkt.flow = connFlowKey(0);
        pkt.seg.seq = seq;
        pkt.seg.ack = 2;
        pkt.seg.len = len;
        pkt.seg.flags = flagAck;
        pkt.seg.wnd = 64 * 1024;
        socket.onSegmentSoftirq(ctx, pkt, pool.alloc(ctx));
    }

    int
    drain()
    {
        const int n = socket.recv(ctx, userBuf, 65536);
        settle(); // window-update ACK's control skb returns to the pool
        return n;
    }

    stats::Group root{nullptr, ""};
    sim::EventQueue eq;
    os::Kernel kernel;
    SkbPool pool;
    Driver driver;
    Wire wire;
    Nic nic;
    Socket socket;
    os::ExecContext ctx;
    sim::Addr userBuf;
};

TEST_F(SocketRigTest, FirstPayloadAtSequenceZeroIsPromoted)
{
    // A peer ISN at the very top of the sequence space: the SYN
    // consumes ~0, so the first payload byte is seq 0 — the value the
    // old promoted-floor 0-sentinel confused with "handshake not
    // done", leaving every chunk stranded in the OOO stash.
    establishAt(~0ULL);
    const int base = pool.freeCount();

    // Arrives out of order first: stashed, one slot held.
    injectData(1448, 1448);
    settle();
    EXPECT_EQ(socket.tcp().oooArrivalCount(), 1u);
    EXPECT_EQ(pool.freeCount(), base - 1);

    // The seq-0 gap fill must promote both chunks.
    injectData(0, 1448);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 2);
    EXPECT_EQ(drain(), 2 * 1448);
    EXPECT_EQ(pool.freeCount(), base);
    EXPECT_EQ(socket.tcp().deliveredBytes(), 2u * 1448u);

    // A full retransmission of the seq-0 segment is recognized as
    // already promoted (dup trim), not re-queued.
    injectData(0, 1448);
    settle();
    EXPECT_EQ(pool.freeCount(), base);
    EXPECT_EQ(drain(), 0); // EAGAIN: nothing new
}

TEST_F(SocketRigTest, OverlappingStashesAccountSlotsExactly)
{
    establishAt(1000);
    const std::uint64_t s = 1001; // first payload seq
    const int base = pool.freeCount();

    // An OOO chunk holds exactly one slot...
    injectData(s + 1448, 724);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 1);

    // ...its exact duplicate is freed on arrival (the double-charge
    // bug stashed both until promotion)...
    injectData(s + 1448, 724);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 1);

    // ...a longer chunk at the same start supersedes it, freeing the
    // shorter one...
    injectData(s + 1448, 1448);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 1);

    // ...and a chunk fully inside the stashed range is redundant.
    injectData(s + 2172, 724);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 1);

    // Gap fill promotes the head chunk plus the one surviving stash.
    injectData(s, 1448);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 2);
    EXPECT_EQ(socket.tcp().readableBytes(), 2u * 1448u);
    EXPECT_EQ(drain(), 2 * 1448);
    EXPECT_EQ(pool.freeCount(), base);

    // A retransmission overlapping promoted data is prefix-trimmed:
    // only the 724 fresh bytes reach the application.
    injectData(s + 2172, 1448);
    settle();
    EXPECT_EQ(pool.freeCount(), base - 1);
    EXPECT_EQ(drain(), 724);
    EXPECT_EQ(pool.freeCount(), base);

    // Byte-exact: every payload byte delivered exactly once.
    EXPECT_EQ(socket.appBytesRead.value(),
              static_cast<double>(2 * 1448 + 724));
    EXPECT_EQ(socket.tcp().deliveredBytes(), 2u * 1448u + 724u);
}

/** Deliver @p n MSS segments to a fresh pair in @p order. */
std::uint64_t
deliverInOrderOf(const std::vector<std::size_t> &order,
                 std::uint64_t &ooo_arrivals,
                 std::array<std::uint64_t, 8> &depth_hist)
{
    TcpConnection a(bulkConfig());
    TcpConnection b(bulkConfig());
    establishPair(a, b, 0);
    const std::size_t n =
        *std::max_element(order.begin(), order.end()) + 1;
    a.appendSendData(static_cast<std::uint32_t>(n) * 1448);
    std::vector<Segment> segs = a.pullSegments(1'000);
    EXPECT_EQ(segs.size(), n);
    sim::Tick t = 2'000;
    for (std::size_t idx : order)
        deliver(b, segs.at(idx), t += 100);
    ooo_arrivals = b.oooArrivalCount();
    depth_hist = b.oooDepthHistogram();
    return b.deliveredBytes();
}

TEST(ReorderDelivery, AdversarialArrivalOrdersConvergeByteExact)
{
    constexpr std::size_t n = 24;
    std::uint64_t ooo = 0;
    std::array<std::uint64_t, 8> hist{};

    // Strict reverse: everything stalls behind the first segment.
    std::vector<std::size_t> reverse(n);
    for (std::size_t i = 0; i < n; ++i)
        reverse[i] = n - 1 - i;
    EXPECT_EQ(deliverInOrderOf(reverse, ooo, hist), n * 1448u);
    EXPECT_EQ(ooo, n - 1);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), 0ull), ooo);

    // Evens then odds: every odd fill releases exactly one even.
    std::vector<std::size_t> evenOdd;
    for (std::size_t i = 0; i < n; i += 2)
        evenOdd.push_back(i);
    for (std::size_t i = 1; i < n; i += 2)
        evenOdd.push_back(i);
    EXPECT_EQ(deliverInOrderOf(evenOdd, ooo, hist), n * 1448u);
    EXPECT_GT(ooo, 0u);

    // Deterministic shuffle (fixed LCG), then the same shuffle with
    // every segment delivered twice: duplicates must change nothing.
    std::vector<std::size_t> shuffled(n);
    for (std::size_t i = 0; i < n; ++i)
        shuffled[i] = i;
    std::uint64_t x = 88172645463325252ull;
    for (std::size_t i = n - 1; i > 0; --i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(shuffled[i], shuffled[(x >> 33) % (i + 1)]);
    }
    EXPECT_EQ(deliverInOrderOf(shuffled, ooo, hist), n * 1448u);

    std::vector<std::size_t> doubled;
    for (std::size_t idx : shuffled) {
        doubled.push_back(idx);
        doubled.push_back(idx);
    }
    EXPECT_EQ(deliverInOrderOf(doubled, ooo, hist), n * 1448u);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), 0ull), ooo);
}

TEST(ReorderEifel, SpuriousRetransmitWhenDelayedOriginalFillsGap)
{
    TcpConfig cfg;
    cfg.rtoTicks = 100'000'000;
    cfg.initialCwndSegs = 8;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establishPair(a, b, 0);

    a.appendSendData(5 * 1448);
    std::vector<Segment> segs = a.pullSegments(1'000);
    ASSERT_EQ(segs.size(), 5u);
    EXPECT_EQ(segs[1].tsVal, 1'000u); // originals carry the pull tick

    // segs[0] lands and is acked, so later dup ACKs are true dups.
    std::vector<Segment> none;
    std::vector<Segment> first = deliver(b, segs[0], 2'000);
    if (first.empty())
        b.onDelackTimer(2'000, first);
    ASSERT_FALSE(first.empty());
    a.onSegment(first.back(), 2'050, none);
    const sim::Tick srtt = a.srttTicks();

    // segs[1] is merely delayed; 2..4 draw immediate dup ACKs.
    std::vector<Segment> dups;
    for (std::size_t k = 2; k < 5; ++k) {
        std::vector<Segment> replies =
            deliver(b, segs[k], 2'000 + 100 * static_cast<int>(k));
        ASSERT_FALSE(replies.empty());
        dups.push_back(replies.back());
    }
    a.onSegment(dups[0], 3'000, none);
    a.onSegment(dups[1], 3'100, none);
    EXPECT_EQ(a.retransmitCount(), 0u); // two dups: hold fire
    a.onSegment(dups[2], 3'200, none);
    std::vector<Segment> rtx = a.pullSegments(3'400);
    ASSERT_FALSE(rtx.empty());
    EXPECT_EQ(rtx[0].seq, segs[1].seq);
    EXPECT_EQ(a.retransmitCount(), 1u); // exactly the third triggers
    EXPECT_GT(rtx[0].tsVal, segs[1].tsVal);

    // The *original* wins the race: its cumulative ACK echoes the old
    // TSval, proving the fast retransmit was unnecessary.
    std::vector<Segment> replies = deliver(b, segs[1], 4'000);
    if (replies.empty())
        b.onDelackTimer(4'000, replies);
    ASSERT_FALSE(replies.empty());
    a.onSegment(replies.back(), 4'100, none);
    EXPECT_EQ(a.spuriousRetransmitCount(), 1u);
    // Karn: the ambiguous cumulative ACK takes no RTT sample.
    EXPECT_EQ(a.srttTicks(), srtt);

    // The late retransmission arrives as a pure duplicate; nothing
    // further is classified.
    deliver(b, rtx[0], 4'200);
    EXPECT_EQ(a.spuriousRetransmitCount(), 1u);
}

TEST(ReorderEifel, GenuineLossIsNeverClassifiedSpurious)
{
    TcpConfig cfg;
    cfg.rtoTicks = 100'000'000;
    cfg.initialCwndSegs = 8;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establishPair(a, b, 0);

    a.appendSendData(5 * 1448);
    std::vector<Segment> segs = a.pullSegments(1'000);
    ASSERT_EQ(segs.size(), 5u);

    std::vector<Segment> none;
    std::vector<Segment> first = deliver(b, segs[0], 2'000);
    if (first.empty())
        b.onDelackTimer(2'000, first);
    ASSERT_FALSE(first.empty());
    a.onSegment(first.back(), 2'050, none);
    const sim::Tick srtt = a.srttTicks();

    // segs[1] is genuinely lost; the fast retransmit fills the gap.
    std::vector<Segment> dups;
    for (std::size_t k = 2; k < 5; ++k) {
        std::vector<Segment> replies =
            deliver(b, segs[k], 2'000 + 100 * static_cast<int>(k));
        ASSERT_FALSE(replies.empty());
        dups.push_back(replies.back());
    }
    for (std::size_t i = 0; i < 3; ++i)
        a.onSegment(dups[i], 3'000 + 100 * static_cast<int>(i), none);
    std::vector<Segment> rtx = a.pullSegments(3'400);
    ASSERT_FALSE(rtx.empty());
    EXPECT_EQ(a.retransmitCount(), 1u);

    // The gap filler IS the retransmission: the cumulative ACK echoes
    // the retransmission's own TSval, and Eifel must stay silent.
    std::vector<Segment> replies = deliver(b, rtx[0], 4'000);
    if (replies.empty())
        b.onDelackTimer(4'000, replies);
    ASSERT_FALSE(replies.empty());
    a.onSegment(replies.back(), 4'100, none);
    EXPECT_EQ(a.spuriousRetransmitCount(), 0u);
    EXPECT_EQ(a.ackedBytes(), 5u * 1448u);
    // Karn holds here too.
    EXPECT_EQ(a.srttTicks(), srtt);
}

TEST(ReorderSystem, InjectedReorderFaultsAreSeededDeterministic)
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.ttcp().mode = workload::TtcpMode::Receive;
    cfg.ttcp().msgSize = 8192;
    cfg.faults.tag = "reorder";
    cfg.faults.toSut.reorderProb = 0.02;
    core::RunSchedule sched;
    sched.warmup = 2'000'000;   // 1 ms
    sched.measure = 10'000'000; // 5 ms

    auto totals = [&cfg, &sched](std::uint64_t &ooo,
                                 std::uint64_t &rtx,
                                 std::uint64_t &spurious) {
        core::System sys(cfg);
        const core::RunResult r = core::Experiment::measure(sys, sched);
        EXPECT_GT(r.payloadBytes, 0u);
        ooo = rtx = spurious = 0;
        for (int i = 0; i < sys.numConnections(); ++i) {
            ooo += sys.socket(i).tcp().oooArrivalCount();
            rtx += sys.peer(i).tcp().retransmitCount();
            spurious += sys.peer(i).tcp().spuriousRetransmitCount();
        }
    };

    std::uint64_t o1 = 0, r1 = 0, s1 = 0, o2 = 0, r2 = 0, s2 = 0;
    totals(o1, r1, s1);
    totals(o2, r2, s2);
    // The injected delay must actually reorder, and identically so
    // under an identical seed; spurious never exceeds retransmits.
    EXPECT_GT(o1, 0u);
    EXPECT_EQ(o1, o2);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(s1, s2);
    EXPECT_LE(s1, r1);
}

TEST(ReorderSystem, SenderHopDriverIsDeterministicAndOffByDefault)
{
    auto hopsFor = [](sim::Tick hop_ticks) {
        core::SystemConfig cfg;
        cfg.platform.numCpus = 4;
        cfg.numConnections = 1;
        workload::FlowMixConfig mix;
        mix.maxConcurrentFlows = 2;
        mix.totalFlows = 10;
        mix.flowSizeMin = 8 * 1024;
        mix.flowSizeMax = 32 * 1024;
        mix.meanInterarrivalTicks = 100'000;
        mix.listenBacklog = 64;
        mix.senderHopTicks = hop_ticks;
        cfg.workload = mix;
        core::System sys(cfg);
        sys.establishAll(1'000'000);
        net::FlowClientPeer &client = sys.flowPeer(0);
        while (client.flowsCompletedCount() < 10 &&
               sys.eventQueue().now() < 4'000'000'000ull) {
            sys.runFor(20'000'000);
        }
        EXPECT_EQ(client.flowsCompletedCount(), 10u);
        return sys.senderHopCount();
    };

    EXPECT_EQ(hopsFor(0), 0u) << "hop driver must be off by default";
    const std::uint64_t h1 = hopsFor(2'000'000);
    const std::uint64_t h2 = hopsFor(2'000'000);
    EXPECT_GT(h1, 0u);
    EXPECT_EQ(h1, h2);
}

TEST(ReorderResults, ReorderBlockRoundTripsThroughJson)
{
    core::CampaignPoint withReorder;
    withReorder.label = "mix reorder point";
    withReorder.config.workload = workload::FlowMixConfig{};
    core::RunResult r;
    r.seconds = 0.5;
    r.payloadBytes = 123456;
    r.flows.started = 40;
    r.flows.completed = 40;
    r.flows.flowLearnDrops = 3;
    r.reorder.oooArrivals = 7;
    r.reorder.oooWindows = 2;
    r.reorder.oooWindowTicks = 81'000;
    r.reorder.oooDepthHist = {4, 2, 1, 0, 0, 0, 0, 0};
    r.reorder.dupAckBursts = 5;
    r.reorder.retransmits = 3;
    r.reorder.spuriousRetransmits = 2;
    r.reorder.senderHops = 40;

    core::CampaignPoint quiet;
    quiet.label = "reorder-free point";

    const core::ResultSet rs({withReorder, quiet},
                             {r, core::RunResult{}});
    std::stringstream ss;
    core::writeResultsJson(ss, rs);
    const std::string text = ss.str();
    // Exactly one point carries the optional block.
    EXPECT_EQ(text.find("\"reorder\""), text.rfind("\"reorder\""));
    EXPECT_NE(text.find("\"reorder\""), std::string::npos);
    EXPECT_NE(text.find("\"flow_learn_drops\""), std::string::npos);

    const core::JsonCampaign parsed = core::readResultsJson(ss);
    ASSERT_EQ(parsed.points.size(), 2u);
    const core::ReorderStats &ro = parsed.points[0].result.reorder;
    EXPECT_EQ(ro.oooArrivals, 7u);
    EXPECT_EQ(ro.oooWindows, 2u);
    EXPECT_EQ(ro.oooWindowTicks, 81'000u);
    EXPECT_EQ(ro.oooDepthHist,
              (std::array<std::uint64_t, 8>{4, 2, 1, 0, 0, 0, 0, 0}));
    EXPECT_EQ(ro.dupAckBursts, 5u);
    EXPECT_EQ(ro.retransmits, 3u);
    EXPECT_EQ(ro.spuriousRetransmits, 2u);
    EXPECT_EQ(ro.senderHops, 40u);
    EXPECT_EQ(parsed.points[0].result.flows.flowLearnDrops, 3u);
    EXPECT_FALSE(parsed.points[1].result.reorder.any());
}

} // namespace
