/**
 * @file
 * Property test: the set-associative cache model against a simple
 * reference implementation (per-set LRU lists), over random access
 * streams swept across geometries and seeds.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>

#include "src/mem/cache.hh"
#include "src/sim/random.hh"

using namespace na;
using namespace na::mem;

namespace {

/** Obviously-correct reference: per-set list, front == MRU. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned assoc, unsigned line)
        : sets(sets), assoc(assoc), line(line)
    {
    }

    bool
    lookup(sim::Addr addr)
    {
        auto &set = data[setOf(addr)];
        const sim::Addr la = lineOf(addr);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == la) {
                set.splice(set.begin(), set, it);
                return true;
            }
        }
        return false;
    }

    void
    insert(sim::Addr addr)
    {
        auto &set = data[setOf(addr)];
        const sim::Addr la = lineOf(addr);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == la) {
                set.splice(set.begin(), set, it);
                return;
            }
        }
        if (set.size() >= assoc)
            set.pop_back();
        set.push_front(la);
    }

    bool
    present(sim::Addr addr) const
    {
        auto it = data.find(setOf(addr));
        if (it == data.end())
            return false;
        const sim::Addr la = lineOf(addr);
        for (sim::Addr v : it->second) {
            if (v == la)
                return true;
        }
        return false;
    }

    void
    erase(sim::Addr addr)
    {
        auto &set = data[setOf(addr)];
        set.remove(lineOf(addr));
    }

  private:
    unsigned sets;
    unsigned assoc;
    unsigned line;
    std::map<unsigned, std::list<sim::Addr>> data;

    sim::Addr lineOf(sim::Addr a) const { return a / line * line; }
    unsigned setOf(sim::Addr a) const
    {
        return static_cast<unsigned>((a / line) % sets);
    }
};

using Geometry = std::tuple<unsigned, unsigned, std::uint64_t>;
// (assoc, lineBytes, seed)

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheVsReference, RandomStreamAgrees)
{
    const auto [assoc, line, seed] = GetParam();
    const unsigned sets = 16;
    stats::Group root(nullptr, "");
    Cache cache(&root, "c",
                static_cast<std::uint64_t>(sets) * assoc * line, assoc,
                line);
    RefCache ref(sets, assoc, line);
    sim::Random rng(seed);

    for (int i = 0; i < 20000; ++i) {
        // Skewed address stream: hot region + cold tail.
        const sim::Addr addr =
            rng.chance(0.7) ? rng.range(0, sets * assoc * line / 2)
                            : rng.range(0, 1u << 20);
        const bool hit = cache.lookup(addr) != LineState::Invalid;
        const bool ref_hit = ref.lookup(addr);
        ASSERT_EQ(hit, ref_hit) << "divergence at access " << i
                                << " addr " << addr;
        if (!hit) {
            cache.insert(addr, LineState::Shared);
            ref.insert(addr);
        }
    }
}

TEST_P(CacheVsReference, InvalidationsAgree)
{
    const auto [assoc, line, seed] = GetParam();
    const unsigned sets = 8;
    stats::Group root(nullptr, "");
    Cache cache(&root, "c",
                static_cast<std::uint64_t>(sets) * assoc * line, assoc,
                line);
    RefCache ref(sets, assoc, line);
    sim::Random rng(seed * 31 + 7);

    for (int i = 0; i < 8000; ++i) {
        const sim::Addr addr = rng.range(0, 1u << 16);
        if (rng.chance(0.2)) {
            // Random snoop invalidation, mirrored in the reference.
            ASSERT_EQ(cache.probe(addr) != LineState::Invalid,
                      ref.present(addr));
            cache.invalidate(addr);
            ref.erase(addr);
        } else {
            const bool hit = cache.lookup(addr) != LineState::Invalid;
            const bool ref_hit = ref.lookup(addr);
            ASSERT_EQ(hit, ref_hit) << "divergence at access " << i;
            if (!hit) {
                cache.insert(addr, LineState::Shared);
                ref.insert(addr);
            }
        }
    }
    EXPECT_LE(cache.validLines(),
              static_cast<std::uint64_t>(sets) * assoc);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Geometry{1, 64, 1}, Geometry{2, 64, 2},
                      Geometry{4, 64, 3}, Geometry{8, 64, 4},
                      Geometry{4, 32, 5}, Geometry{4, 128, 6},
                      Geometry{16, 64, 7}, Geometry{8, 128, 8}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "assoc" + std::to_string(std::get<0>(info.param)) +
               "_line" + std::to_string(std::get<1>(info.param)) +
               "_seed" + std::to_string(std::get<2>(info.param));
    });

} // namespace
