/**
 * @file
 * Property test: the set-associative cache model against a simple
 * reference implementation (per-set LRU lists), over random access
 * streams swept across geometries and seeds.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>

#include "src/mem/cache.hh"
#include "src/sim/random.hh"

using namespace na;
using namespace na::mem;

namespace {

/** Obviously-correct reference: per-set list, front == MRU. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned assoc, unsigned line)
        : sets(sets), assoc(assoc), line(line)
    {
    }

    bool
    lookup(sim::Addr addr)
    {
        auto &set = data[setOf(addr)];
        const sim::Addr la = lineOf(addr);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == la) {
                set.splice(set.begin(), set, it);
                return true;
            }
        }
        return false;
    }

    void
    insert(sim::Addr addr)
    {
        auto &set = data[setOf(addr)];
        const sim::Addr la = lineOf(addr);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == la) {
                set.splice(set.begin(), set, it);
                return;
            }
        }
        if (set.size() >= assoc)
            set.pop_back();
        set.push_front(la);
    }

    bool
    present(sim::Addr addr) const
    {
        auto it = data.find(setOf(addr));
        if (it == data.end())
            return false;
        const sim::Addr la = lineOf(addr);
        for (sim::Addr v : it->second) {
            if (v == la)
                return true;
        }
        return false;
    }

    void
    erase(sim::Addr addr)
    {
        auto &set = data[setOf(addr)];
        set.remove(lineOf(addr));
    }

  private:
    unsigned sets;
    unsigned assoc;
    unsigned line;
    std::map<unsigned, std::list<sim::Addr>> data;

    sim::Addr lineOf(sim::Addr a) const { return a / line * line; }
    unsigned setOf(sim::Addr a) const
    {
        return static_cast<unsigned>((a / line) % sets);
    }
};

using Geometry = std::tuple<unsigned, unsigned, std::uint64_t>;
// (assoc, lineBytes, seed)

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheVsReference, RandomStreamAgrees)
{
    const auto [assoc, line, seed] = GetParam();
    const unsigned sets = 16;
    stats::Group root(nullptr, "");
    Cache cache(&root, "c",
                static_cast<std::uint64_t>(sets) * assoc * line, assoc,
                line);
    RefCache ref(sets, assoc, line);
    sim::Random rng(seed);

    for (int i = 0; i < 20000; ++i) {
        // Skewed address stream: hot region + cold tail.
        const sim::Addr addr =
            rng.chance(0.7) ? rng.range(0, sets * assoc * line / 2)
                            : rng.range(0, 1u << 20);
        const bool hit = cache.lookup(addr) != LineState::Invalid;
        const bool ref_hit = ref.lookup(addr);
        ASSERT_EQ(hit, ref_hit) << "divergence at access " << i
                                << " addr " << addr;
        if (!hit) {
            cache.insert(addr, LineState::Shared);
            ref.insert(addr);
        }
    }
}

TEST_P(CacheVsReference, InvalidationsAgree)
{
    const auto [assoc, line, seed] = GetParam();
    const unsigned sets = 8;
    stats::Group root(nullptr, "");
    Cache cache(&root, "c",
                static_cast<std::uint64_t>(sets) * assoc * line, assoc,
                line);
    RefCache ref(sets, assoc, line);
    sim::Random rng(seed * 31 + 7);

    for (int i = 0; i < 8000; ++i) {
        const sim::Addr addr = rng.range(0, 1u << 16);
        if (rng.chance(0.2)) {
            // Random snoop invalidation, mirrored in the reference.
            ASSERT_EQ(cache.probe(addr) != LineState::Invalid,
                      ref.present(addr));
            cache.invalidate(addr);
            ref.erase(addr);
        } else {
            const bool hit = cache.lookup(addr) != LineState::Invalid;
            const bool ref_hit = ref.lookup(addr);
            ASSERT_EQ(hit, ref_hit) << "divergence at access " << i;
            if (!hit) {
                cache.insert(addr, LineState::Shared);
                ref.insert(addr);
            }
        }
    }
    EXPECT_LE(cache.validLines(),
              static_cast<std::uint64_t>(sets) * assoc);
}

/**
 * The merged findOrInsert fast path against the composed
 * lookup -> insert -> setModified sequence it replaced: same hit/miss
 * answers, same victims, same counters, on a mixed stream of reads,
 * writes, snoop invalidations, and snoop downgrades. This is the
 * equivalence the hierarchy's bit-identical results rest on.
 */
TEST_P(CacheVsReference, FindOrInsertMatchesComposedPath)
{
    const auto [assoc, line, seed] = GetParam();
    const unsigned sets = 8;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(sets) * assoc * line;
    stats::Group root(nullptr, "");
    Cache merged(&root, "m", bytes, assoc, line);
    Cache composed(&root, "c", bytes, assoc, line);
    sim::Random rng(seed * 97 + 13);

    for (int i = 0; i < 12000; ++i) {
        const sim::Addr addr = rng.range(0, 1u << 16);
        if (rng.chance(0.08)) {
            ASSERT_EQ(merged.invalidate(addr), composed.invalidate(addr))
                << "invalidate divergence at access " << i;
            continue;
        }
        if (rng.chance(0.08)) {
            ASSERT_EQ(merged.downgrade(addr), composed.downgrade(addr))
                << "downgrade divergence at access " << i;
            continue;
        }
        const bool write = rng.chance(0.3);
        const LineState want =
            write ? LineState::Modified : LineState::Shared;

        // Composed legacy path (what CacheHierarchy::access used to do).
        const LineState prev = composed.lookup(addr);
        Cache::Victim victim;
        if (prev == LineState::Invalid)
            victim = composed.insert(addr, want);
        else if (write && prev != LineState::Modified)
            composed.setModified(addr);

        const auto r = merged.findOrInsert(addr, want);
        ASSERT_EQ(r.prev, prev) << "state divergence at access " << i
                                << " addr " << addr;
        ASSERT_EQ(r.victim.valid, victim.valid)
            << "victim divergence at access " << i;
        if (victim.valid) {
            ASSERT_EQ(r.victim.lineAddr, victim.lineAddr)
                << "victim address divergence at access " << i;
            ASSERT_EQ(r.victim.dirty, victim.dirty)
                << "victim dirtiness divergence at access " << i;
        }
    }

    EXPECT_EQ(merged.hits.value(), composed.hits.value());
    EXPECT_EQ(merged.misses.value(), composed.misses.value());
    EXPECT_EQ(merged.evictions.value(), composed.evictions.value());
    EXPECT_EQ(merged.writebacks.value(), composed.writebacks.value());
    EXPECT_EQ(merged.snoopInvalidations.value(),
              composed.snoopInvalidations.value());
    EXPECT_EQ(merged.validLines(), composed.validLines());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Geometry{1, 64, 1}, Geometry{2, 64, 2},
                      Geometry{4, 64, 3}, Geometry{8, 64, 4},
                      Geometry{4, 32, 5}, Geometry{4, 128, 6},
                      Geometry{16, 64, 7}, Geometry{8, 128, 8}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "assoc" + std::to_string(std::get<0>(info.param)) +
               "_line" + std::to_string(std::get<1>(info.param)) +
               "_seed" + std::to_string(std::get<2>(info.param));
    });

} // namespace
