/**
 * @file
 * Unit tests for the timed-contention spinlock model.
 */

#include <gtest/gtest.h>

#include "src/os/exec_context.hh"
#include "src/os/kernel.hh"
#include "src/os/spinlock.hh"

using namespace na;
using namespace na::os;

namespace {

class SpinLockTest : public ::testing::Test
{
  protected:
    SpinLockTest()
        : kernel(&root, eq, cpu::PlatformConfig{}),
          lock(&root, "l", prof::FuncId::LockSock,
               kernel.addressSpace().alloc(mem::Region::KernelData, 64)),
          c0(kernel, kernel.processor(0), nullptr),
          c1(kernel, kernel.processor(1), nullptr)
    {
    }

    stats::Group root{nullptr, ""};
    sim::EventQueue eq;
    Kernel kernel;
    SpinLock lock;
    ExecContext c0;
    ExecContext c1;
};

TEST_F(SpinLockTest, UncontendedAcquireIsCheap)
{
    lock.acquire(c0, 100);
    lock.release(c0, 150);
    EXPECT_EQ(lock.acquisitions.value(), 1.0);
    EXPECT_EQ(lock.contentions.value(), 0.0);
    EXPECT_EQ(lock.spinCycles.value(), 0.0);
    EXPECT_EQ(lock.lastOwner(), 0);
}

TEST_F(SpinLockTest, SameCpuReacquireNeverSpins)
{
    lock.acquire(c0, 100);
    lock.release(c0, 500);
    lock.acquire(c0, 200); // "inside" the previous hold window
    lock.release(c0, 600);
    EXPECT_EQ(lock.contentions.value(), 0.0);
}

TEST_F(SpinLockTest, CrossCpuOverlapSpins)
{
    lock.acquire(c0, 1000);
    lock.release(c0, 1400); // hold [1000, 1400)
    lock.acquire(c1, 1100); // lands mid-hold
    lock.release(c1, 1500);
    EXPECT_EQ(lock.contentions.value(), 1.0);
    // Spun roughly until the release point.
    EXPECT_NEAR(lock.spinCycles.value(), 300.0, 5.0);
}

TEST_F(SpinLockTest, AcquireBeforeHoldStartDoesNotSpin)
{
    // CPU0's dispatch started later in wall-clock but acquired "in the
    // future"; CPU1's earlier estimated time wins causally.
    lock.acquire(c0, 5000);
    lock.release(c0, 5400);
    lock.acquire(c1, 200); // before the hold window: no contention
    lock.release(c1, 300);
    EXPECT_EQ(lock.contentions.value(), 0.0);
}

TEST_F(SpinLockTest, AcquireAfterReleaseDoesNotSpin)
{
    lock.acquire(c0, 100);
    lock.release(c0, 200);
    lock.acquire(c1, 500);
    lock.release(c1, 600);
    EXPECT_EQ(lock.contentions.value(), 0.0);
}

TEST_F(SpinLockTest, ContendedAcquireChargesLockBin)
{
    const auto before = kernel.accounting().byBin(
        prof::Bin::Locks, prof::Event::Cycles);
    lock.acquire(c0, 1000);
    lock.release(c0, 3000);
    lock.acquire(c1, 1500);
    lock.release(c1, 3100);
    const auto after = kernel.accounting().byBin(
        prof::Bin::Locks, prof::Event::Cycles);
    EXPECT_GE(after - before, 1500u); // includes the spin
    // The contended handoff also flushes the acquirer's pipeline.
    EXPECT_GE(kernel.accounting().byBin(prof::Bin::Locks,
                                        prof::Event::MachineClears),
              1u);
}

TEST_F(SpinLockTest, ContendedBranchAnatomy)
{
    // Paper Table 2: spinning inflates branches; exactly one exit
    // mispredict per contended acquisition.
    lock.acquire(c0, 1000);
    lock.release(c0, 9000); // long hold: many PAUSE iterations
    const double br0 = kernel.core(1).counters.branches.value();
    const double mp0 = kernel.core(1).counters.brMispredicts.value();
    lock.acquire(c1, 1000);
    lock.release(c1, 9100);
    const double branches =
        kernel.core(1).counters.branches.value() - br0;
    const double mispredicts =
        kernel.core(1).counters.brMispredicts.value() - mp0;
    EXPECT_GT(branches, 100.0); // ~2 per 20-cycle PAUSE iteration
    EXPECT_EQ(mispredicts, 1.0);
}

TEST_F(SpinLockTest, UncontendedBranchAnatomy)
{
    lock.acquire(c0, 100);
    lock.release(c0, 120);
    EXPECT_LE(kernel.core(0).counters.branches.value(), 4.0);
    EXPECT_EQ(kernel.core(0).counters.brMispredicts.value(), 0.0);
}

TEST_F(SpinLockTest, DeathOnDoubleAcquireSameCpu)
{
    lock.acquire(c0, 100);
    EXPECT_DEATH(lock.acquire(c0, 110), "deadlock");
    lock.release(c0, 120);
}

TEST_F(SpinLockTest, DeathOnReleaseWhileFree)
{
    EXPECT_DEATH(lock.release(c0, 100), "released while free");
}

TEST_F(SpinLockTest, DeathOnForeignRelease)
{
    lock.acquire(c0, 100);
    EXPECT_DEATH(lock.release(c1, 110), "held by cpu");
    lock.release(c0, 120);
}

} // namespace
