/**
 * @file
 * Fault-injection subsystem and hardened campaign engine: plan
 * validation, event-queue stall guard, seeded fault-sweep determinism,
 * graceful degradation into PointFailure records, and the schema-v4
 * JSON round trip of degraded points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/core/results_json.hh"
#include "src/core/sweep.hh"
#include "src/core/system.hh"
#include "src/sim/event_queue.hh"

using namespace na;

namespace {

core::RunSchedule
tinySchedule()
{
    core::RunSchedule s;
    s.warmup = 2'000'000;   // 1 ms
    s.measure = 10'000'000; // 5 ms
    return s;
}

sim::FaultPlan
lossyPlan()
{
    sim::FaultPlan p;
    p.tag = "lossy";
    p.toPeer.lossProb = 0.002;
    p.toSut.lossProb = 0.002;
    p.toSut.corruptProb = 0.001;
    p.toPeer.dupProb = 0.002;
    return p;
}

// --- FaultPlan / SystemConfig validation ---------------------------

TEST(FaultPlan, DefaultPlanIsDisabledAndValid)
{
    sim::FaultPlan p;
    EXPECT_FALSE(p.enabled());
    EXPECT_NO_THROW(p.validate("test."));
}

TEST(FaultPlan, RejectsProbabilitiesOutsideUnitInterval)
{
    sim::FaultPlan p;
    p.toSut.lossProb = -0.1;
    EXPECT_THROW(p.validate("test."), std::runtime_error);
    p.toSut.lossProb = 1.5;
    EXPECT_THROW(p.validate("test."), std::runtime_error);
    p.toSut.lossProb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(p.validate("test."), std::runtime_error);
    p.toSut.lossProb = 1.0; // inclusive bound is legal
    EXPECT_NO_THROW(p.validate("test."));
}

TEST(FaultPlan, RejectsInconsistentBurstAndWindowSettings)
{
    sim::FaultPlan p;
    // Gilbert-Elliott: a bad state you can enter but never leave.
    p.toSut.geGoodToBad = 0.01;
    p.toSut.geBadToGood = 0.0;
    EXPECT_THROW(p.validate("test."), std::runtime_error);
    p.toSut.geBadToGood = 0.2;
    EXPECT_NO_THROW(p.validate("test."));

    // Flap window without a period, and window swallowing the period.
    sim::FaultPlan q;
    q.linkFlapPeriodTicks = 0;
    q.linkFlapDownTicks = 100;
    EXPECT_THROW(q.validate("test."), std::runtime_error);
    q.linkFlapPeriodTicks = 1'000;
    q.linkFlapDownTicks = 1'000;
    EXPECT_THROW(q.validate("test."), std::runtime_error);
    q.linkFlapDownTicks = 100;
    EXPECT_NO_THROW(q.validate("test."));
}

TEST(FaultPlan, SystemConfigValidateCoversFaults)
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.faults.irqLossProb = 2.0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    EXPECT_THROW(core::System{cfg}, std::runtime_error);
    cfg.faults.irqLossProb = 0.01;
    EXPECT_NO_THROW(cfg.validate());
}

// --- event-queue stall guard ---------------------------------------

class SameTickSpinner : public sim::Event
{
  public:
    explicit SameTickSpinner(sim::EventQueue &eq)
        : sim::Event("same-tick-spinner"), eq(eq)
    {
    }

    // Reschedules itself at the current tick forever: simulated time
    // never advances, which is exactly the livelock the guard exists
    // to catch.
    void process() override { eq.schedule(this, eq.now()); }

  private:
    sim::EventQueue &eq;
};

TEST(StallGuard, ThrowsWhenTimeStopsAdvancing)
{
    sim::EventQueue eq;
    eq.setStallThreshold(1'000);
    SameTickSpinner spinner(eq);
    eq.schedule(&spinner, 50);
    try {
        eq.runUntil(100);
        FAIL() << "stall guard never fired";
    } catch (const std::runtime_error &e) {
        // The diagnostic must name the culprit event.
        EXPECT_NE(std::string(e.what()).find("same-tick-spinner"),
                  std::string::npos)
            << e.what();
    }
}

class TickStepper : public sim::Event
{
  public:
    explicit TickStepper(sim::EventQueue &eq)
        : sim::Event("tick-stepper"), eq(eq)
    {
    }

    void process() override { eq.schedule(this, eq.now() + 1); }

  private:
    sim::EventQueue &eq;
};

TEST(StallGuard, ToleratesArbitrarilyManyAdvancingEvents)
{
    sim::EventQueue eq;
    eq.setStallThreshold(100);
    TickStepper stepper(eq);
    eq.schedule(&stepper, 0);
    // 10'000 events, each at a new tick: far past the threshold in
    // count, but always making progress.
    EXPECT_NO_THROW(eq.runUntil(10'000));
    eq.deschedule(&stepper);
}

// --- seeded fault sweeps: determinism and labels -------------------

std::vector<core::CampaignPoint>
faultSweepPoints()
{
    core::SystemConfig base;
    base.numConnections = 2;
    sim::FaultPlan bursty;
    bursty.tag = "bursty";
    bursty.toSut.geGoodToBad = 0.002;
    bursty.toSut.geBadToGood = 0.1;
    bursty.toSut.geBadLoss = 0.5;
    return core::SweepBuilder()
        .base(base)
        .schedule(tinySchedule())
        .modes({workload::TtcpMode::Transmit,
                workload::TtcpMode::Receive})
        .size(4096)
        .affinities({core::AffinityMode::None, core::AffinityMode::Full})
        .faultPlans({lossyPlan(), bursty})
        .build();
}

TEST(FaultSweep, LabelsCarryThePlanTag)
{
    const std::vector<core::CampaignPoint> points = faultSweepPoints();
    ASSERT_EQ(points.size(), 8u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string &l = points[i].label;
        EXPECT_TRUE(l.find(" flt:lossy") != std::string::npos ||
                    l.find(" flt:bursty") != std::string::npos)
            << l;
    }
}

TEST(FaultSweep, DeterministicAcrossRunsAndThreadCounts)
{
    const std::vector<core::CampaignPoint> points = faultSweepPoints();
    core::Campaign::Options serial;
    serial.numThreads = 1;
    core::Campaign::Options threaded;
    threaded.numThreads = 2;

    const core::ResultSet a = core::Campaign::run(points, serial);
    const core::ResultSet b = core::Campaign::run(points, serial);
    const core::ResultSet c = core::Campaign::run(points, threaded);
    ASSERT_EQ(a.size(), points.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FALSE(a.result(i).failed) << points[i].label;
        EXPECT_GT(a.result(i).payloadBytes, 0u) << points[i].label;
        for (const core::ResultSet *other : {&b, &c}) {
            EXPECT_EQ(a.result(i).payloadBytes,
                      other->result(i).payloadBytes)
                << points[i].label;
            EXPECT_EQ(a.result(i).throughputMbps,
                      other->result(i).throughputMbps)
                << points[i].label;
            for (std::size_t e = 0; e < prof::numEvents; ++e) {
                EXPECT_EQ(a.result(i).eventTotals[e],
                          other->result(i).eventTotals[e])
                    << points[i].label;
            }
        }
    }
}

TEST(FaultInjection, InjectorCountersFireAndFaultFreePathHasNone)
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.faults = lossyPlan();
    core::System sys(cfg);
    const core::RunResult r =
        core::Experiment::measure(sys, tinySchedule());
    EXPECT_GT(r.payloadBytes, 0u);
    double injected = 0;
    for (int i = 0; i < sys.numConnections(); ++i) {
        const net::FaultInjector *fi = sys.faultInjector(i);
        ASSERT_NE(fi, nullptr);
        injected += fi->dropsLoss() + fi->corrupts() + fi->dups();
    }
    EXPECT_GT(injected, 0.0);

    core::SystemConfig clean;
    clean.numConnections = 2;
    core::System cleanSys(clean);
    EXPECT_EQ(cleanSys.faultInjector(0), nullptr);
}

// --- retry seeds ---------------------------------------------------

TEST(RetrySeed, AttemptZeroMatchesPointSeedExactly)
{
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(core::Campaign::retrySeed(12345, i, 0),
                  core::Campaign::pointSeed(12345, i));
    }
}

TEST(RetrySeed, LaterAttemptsDiverge)
{
    const std::uint64_t s0 = core::Campaign::retrySeed(12345, 3, 0);
    const std::uint64_t s1 = core::Campaign::retrySeed(12345, 3, 1);
    const std::uint64_t s2 = core::Campaign::retrySeed(12345, 3, 2);
    EXPECT_NE(s0, s1);
    EXPECT_NE(s1, s2);
    EXPECT_NE(s0, s2);
}

// --- graceful degradation + schema-v4 round trip -------------------

std::vector<core::CampaignPoint>
doomedPoints()
{
    core::SystemConfig base;
    base.numConnections = 2;
    base.faults.tag = "blackhole";
    base.faults.toSut.lossProb = 1.0; // nothing ever arrives
    core::RunSchedule sched = tinySchedule();
    sched.establishDeadline = 4'000'000; // fail fast: 2 ms
    return core::SweepBuilder()
        .base(base)
        .schedule(sched)
        .size(4096)
        .affinity(core::AffinityMode::Full)
        .build();
}

TEST(Degradation, ExhaustedRetriesBecomeStructuredPointFailures)
{
    core::Campaign::Options opts;
    opts.maxAttempts = 2;
    int hook_calls = 0;
    opts.failureHook = [&hook_calls](const core::CampaignPoint &,
                                     std::size_t index, int attempt,
                                     const std::string &reason) {
        ++hook_calls;
        EXPECT_EQ(index, 0u);
        EXPECT_GE(attempt, 1);
        EXPECT_NE(reason.find("establish"), std::string::npos);
    };
    const core::ResultSet rs =
        core::Campaign::run(doomedPoints(), opts);
    ASSERT_EQ(rs.size(), 1u);
    EXPECT_EQ(rs.failureCount(), 1u);
    EXPECT_EQ(hook_calls, 2);

    const core::RunResult &r = rs.result(0);
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.failure.attempts, 2);
    EXPECT_NE(r.failure.reason.find("establish"), std::string::npos);
    EXPECT_FALSE(r.failure.configSummary.empty());
    EXPECT_GT(r.failure.ticksReached, 0u);
}

TEST(Degradation, FailFastAggregatesEveryFailureInFull)
{
    core::Campaign::Options opts;
    opts.maxAttempts = 1;
    opts.failFast = true;
    try {
        core::Campaign::run(doomedPoints(), opts);
        FAIL() << "failFast did not throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        // The full establish message survives, not a truncated head.
        EXPECT_NE(what.find("failed to establish"), std::string::npos)
            << what;
        EXPECT_NE(what.find("attempts"), std::string::npos) << what;
    }
}

TEST(ResultsJsonV5, DegradedPointsRoundTripWithFaultLabel)
{
    core::Campaign::Options opts;
    opts.maxAttempts = 2;
    const core::ResultSet rs =
        core::Campaign::run(doomedPoints(), opts);
    ASSERT_EQ(rs.failureCount(), 1u);

    std::stringstream ss;
    core::writeResultsJson(ss, rs);
    EXPECT_NE(ss.str().find("\"schema_version\": " +
                            std::to_string(core::resultsSchemaVersion)),
              std::string::npos);

    const core::JsonCampaign parsed = core::readResultsJson(ss);
    ASSERT_EQ(parsed.points.size(), 1u);
    const core::JsonRunRecord &rec = parsed.points[0];
    EXPECT_EQ(rec.faults, "blackhole");
    EXPECT_TRUE(rec.result.failed);
    EXPECT_EQ(rec.result.failure.reason, rs.result(0).failure.reason);
    EXPECT_EQ(rec.result.failure.configSummary,
              rs.result(0).failure.configSummary);
    EXPECT_EQ(rec.result.failure.ticksReached,
              rs.result(0).failure.ticksReached);
    EXPECT_EQ(rec.result.failure.attempts,
              rs.result(0).failure.attempts);
}

// --- TX ring-full visibility ---------------------------------------

TEST(RingFull, TinyTxRingSurfacesDropsInRunResult)
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.ttcp().mode = workload::TtcpMode::Transmit;
    cfg.ttcp().msgSize = 65536;
    cfg.nic.txRingSize = 4; // far below the offered load
    // Recovery from a ring-full drop is pure RTO (no ACK clock once
    // the whole burst is gone), and kernel timers only run from the
    // periodic tick — so both must fit the 5 ms window, which is
    // shorter than the default 200 ms RTO and 10 ms tick.
    cfg.tcp.rtoTicks = 200'000;              // 0.1 ms RTO floor
    cfg.platform.timerTickCycles = 100'000;  // 0.05 ms tick
    core::System sys(cfg);
    const core::RunResult r =
        core::Experiment::measure(sys, tinySchedule());
    EXPECT_GT(r.payloadBytes, 0u)
        << "backpressure must degrade, not wedge, the sender";
    EXPECT_GT(r.txDropsRingFull, 0u);
}

} // namespace
