/**
 * @file
 * SystemConfig::validate() rejection paths and their wiring into the
 * System constructor.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "src/core/system.hh"

using namespace na;

namespace {

core::SystemConfig
goodConfig()
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    return cfg;
}

TEST(ConfigValidate, AcceptsDefaultAndPaperConfigs)
{
    EXPECT_NO_THROW(core::SystemConfig{}.validate());
    core::SystemConfig cfg = goodConfig();
    cfg.platform.numCpus = 8;
    cfg.wireLossProb = 1.0;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, RejectsNonPositiveConnectionCount)
{
    core::SystemConfig cfg = goodConfig();
    cfg.numConnections = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.numConnections = -3;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsCpuCountOutsideModelRange)
{
    core::SystemConfig cfg = goodConfig();
    cfg.platform.numCpus = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.platform.numCpus = 9;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsNonPositiveWireRate)
{
    core::SystemConfig cfg = goodConfig();
    cfg.wireBitsPerSec = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsLossProbabilityOutsideUnitInterval)
{
    core::SystemConfig cfg = goodConfig();
    cfg.wireLossProb = -0.1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.wireLossProb = 1.5;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.wireLossProb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsZeroMessageSize)
{
    core::SystemConfig cfg = goodConfig();
    cfg.ttcp().msgSize = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, ErrorMessagesNameTheField)
{
    core::SystemConfig cfg = goodConfig();
    cfg.wireLossProb = 1.5;
    try {
        cfg.validate();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("wireLossProb"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidate, RejectsQueueCpusOutsideInstalledRange)
{
    core::SystemConfig cfg = goodConfig();
    cfg.platform.numCpus = 2;
    cfg.steering.kind = net::SteeringKind::Rss;
    cfg.steering.numQueues = 2;
    cfg.steering.queueCpus = {0, 2}; // CPU 2 does not exist
    try {
        cfg.validate();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("queueCpus[1]"),
                  std::string::npos)
            << e.what();
    }
    cfg.steering.queueCpus = {0, -1};
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.steering.queueCpus = {0, 1};
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, RejectsPinCpusOutsideInstalledRange)
{
    core::SystemConfig cfg = goodConfig();
    cfg.platform.numCpus = 2;
    cfg.steering.pinCpus = {1, 5}; // CPU 5 does not exist
    try {
        cfg.validate();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("pinCpus[1]"),
                  std::string::npos)
            << e.what();
    }
    cfg.steering.pinCpus = {1, 0};
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, RejectsMalformedSteeringShapes)
{
    // The paper policy is single-queue by definition.
    core::SystemConfig cfg = goodConfig();
    cfg.steering.numQueues = 2;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    // Queue count must fit the CPU model's vector budget.
    cfg = goodConfig();
    cfg.steering.kind = net::SteeringKind::Rss;
    cfg.steering.numQueues = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.steering.numQueues = 9;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    // Indirection table is masked, so it must be a power of two.
    cfg = goodConfig();
    cfg.steering.kind = net::SteeringKind::Rss;
    cfg.steering.rssTableSize = 48;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.steering.rssTableSize = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    // Partial queue->CPU maps are rejected rather than guessed at.
    cfg = goodConfig();
    cfg.platform.numCpus = 4;
    cfg.steering.kind = net::SteeringKind::Rss;
    cfg.steering.numQueues = 4;
    cfg.steering.queueCpus = {0, 1};
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = goodConfig();
    cfg.steering.kind = net::SteeringKind::FlowDirector;
    cfg.steering.flowTableSize = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, SystemConstructorRejectsBadConfig)
{
    core::SystemConfig cfg = goodConfig();
    cfg.numConnections = 0;
    EXPECT_THROW(core::System{cfg}, std::runtime_error);
}

TEST(ConfigValidate, SystemConstructorAcceptsGoodConfig)
{
    EXPECT_NO_THROW(core::System{goodConfig()});
}

} // namespace
