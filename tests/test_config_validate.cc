/**
 * @file
 * SystemConfig::validate() rejection paths and their wiring into the
 * System constructor.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "src/core/system.hh"

using namespace na;

namespace {

core::SystemConfig
goodConfig()
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    return cfg;
}

TEST(ConfigValidate, AcceptsDefaultAndPaperConfigs)
{
    EXPECT_NO_THROW(core::SystemConfig{}.validate());
    core::SystemConfig cfg = goodConfig();
    cfg.platform.numCpus = 8;
    cfg.wireLossProb = 1.0;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, RejectsNonPositiveConnectionCount)
{
    core::SystemConfig cfg = goodConfig();
    cfg.numConnections = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.numConnections = -3;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsCpuCountOutsideModelRange)
{
    core::SystemConfig cfg = goodConfig();
    cfg.platform.numCpus = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.platform.numCpus = 9;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsNonPositiveWireRate)
{
    core::SystemConfig cfg = goodConfig();
    cfg.wireBitsPerSec = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsLossProbabilityOutsideUnitInterval)
{
    core::SystemConfig cfg = goodConfig();
    cfg.wireLossProb = -0.1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.wireLossProb = 1.5;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.wireLossProb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsZeroMessageSize)
{
    core::SystemConfig cfg = goodConfig();
    cfg.ttcp.msgSize = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, ErrorMessagesNameTheField)
{
    core::SystemConfig cfg = goodConfig();
    cfg.wireLossProb = 1.5;
    try {
        cfg.validate();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("wireLossProb"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidate, SystemConstructorRejectsBadConfig)
{
    core::SystemConfig cfg = goodConfig();
    cfg.numConnections = 0;
    EXPECT_THROW(core::System{cfg}, std::runtime_error);
}

TEST(ConfigValidate, SystemConstructorAcceptsGoodConfig)
{
    EXPECT_NO_THROW(core::System{goodConfig()});
}

} // namespace
