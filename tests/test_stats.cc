/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/stats/stats.hh"

using namespace na::stats;

namespace {

TEST(Scalar, AccumulatesAndResets)
{
    Group root(nullptr, "");
    Scalar s(&root, "s", "test scalar");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    s.set(7);
    EXPECT_EQ(s.value(), 7.0);
}

TEST(Vector, BucketsAndTotal)
{
    Group root(nullptr, "");
    Vector v(&root, "v", "test vector", {"a", "b", "c"});
    EXPECT_EQ(v.size(), 3u);
    v[0] = 1;
    v[1] = 2;
    v[2] = 4;
    EXPECT_DOUBLE_EQ(v.total(), 7.0);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Vector, OutOfRangeThrows)
{
    Group root(nullptr, "");
    Vector v(&root, "v", "test vector", {"a"});
    EXPECT_THROW(v[5] = 1, std::out_of_range);
}

TEST(Distribution, MomentsAndExtrema)
{
    Group root(nullptr, "");
    Distribution d(&root, "d", "test dist");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);

    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    // Sample stddev of that classic set is sqrt(32/7).
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Distribution, LargeMeanSmallSpreadIsNumericallyStable)
{
    // Tick-magnitude samples with unit spread: the textbook
    // sumSq - n*m^2 formulation cancels catastrophically here (sumSq
    // and n*m^2 agree in their top ~17 digits), reporting variance 0
    // or garbage. Welford's update must recover stddev ~= 1 exactly.
    Group root(nullptr, "");
    Distribution d(&root, "d", "test dist");
    for (double off : {-1.0, 0.0, 1.0})
        d.sample(1.0e9 + off);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0e9);
    EXPECT_NEAR(d.variance(), 1.0, 1e-9);
    EXPECT_NEAR(d.stddev(), 1.0, 1e-9);
}

TEST(Distribution, SingleSampleHasZeroVariance)
{
    Group root(nullptr, "");
    Distribution d(&root, "d", "test dist");
    d.sample(42);
    EXPECT_EQ(d.variance(), 0.0);
    EXPECT_EQ(d.min(), 42.0);
    EXPECT_EQ(d.max(), 42.0);
}

TEST(Formula, EvaluatesAtReadTime)
{
    Group root(nullptr, "");
    Scalar a(&root, "a", "");
    Scalar b(&root, "b", "");
    Formula f(&root, "ratio", "a/b", [&a, &b] {
        return b.value() != 0 ? a.value() / b.value() : 0.0;
    });
    a += 10;
    b += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    b += 1;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Group, DumpEmitsHierarchicalNames)
{
    Group root(nullptr, "");
    Group child(&root, "child");
    Scalar s(&child, "hits", "hit count");
    s += 3;
    std::ostringstream os;
    root.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("child.hits"), std::string::npos);
    EXPECT_NE(out.find("hit count"), std::string::npos);
}

TEST(Group, ResetCascadesToChildren)
{
    Group root(nullptr, "");
    Group child(&root, "child");
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}

TEST(Group, ChildRemovedOnDestruction)
{
    Group root(nullptr, "");
    {
        Group child(&root, "gone");
        Scalar s(&child, "x", "");
        s += 1;
    }
    std::ostringstream os;
    root.dumpStats(os); // must not touch the dead child
    EXPECT_EQ(os.str().find("gone"), std::string::npos);
}

TEST(Distribution, DumpContainsAllMoments)
{
    Group root(nullptr, "");
    Distribution d(&root, "lat", "latency");
    d.sample(1);
    d.sample(3);
    std::ostringstream os;
    root.dumpStats(os);
    const std::string out = os.str();
    for (const char *part :
         {"lat::count", "lat::mean", "lat::stddev", "lat::min",
          "lat::max"}) {
        EXPECT_NE(out.find(part), std::string::npos) << part;
    }
}

} // namespace
