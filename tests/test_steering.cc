/**
 * @file
 * Steering subsystem: the StaticPaper bit-identity regression against a
 * golden capture of the pre-steering code, plus unit tests for the
 * Toeplitz hash, RSS indirection, and the Flow Director flow table.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include <memory>
#include <vector>

#include "src/core/campaign.hh"
#include "src/core/sweep.hh"
#include "src/net/steering.hh"
#include "src/sim/timeline.hh"

using namespace na;

namespace {

// ---------------------------------------------------------------------
// StaticPaper equivalence regression.
//
// Golden values captured from commit 649d64b (before the steering
// subsystem existed) with the exact campaign below: numConnections=2,
// warmup 2'000'000, measure 10'000'000, TX/RX x {4096, 65536} x all
// four affinity modes, Campaign seed 42 on 2 worker threads. Doubles
// are stored as raw IEEE-754 bit patterns so the comparison is exact.
// If this test fails, the steering refactor changed simulation
// behaviour for the paper's own configuration — that is a bug, not a
// baseline to re-capture.
// ---------------------------------------------------------------------

struct GoldenPoint
{
    std::uint64_t payloadBytes;
    std::uint64_t throughputBits; ///< RunResult::throughputMbps bits
    std::uint64_t ghzPerGbpsBits; ///< RunResult::ghzPerGbps bits
    std::uint64_t irqs;
    std::uint64_t ipis;
    std::uint64_t contextSwitches;
    std::uint64_t events[prof::numEvents];
};

constexpr GoldenPoint goldenTable[16] = {
    // TX 4096B No Aff
    {1067176ull, 4655224398940006148ull, 4608469679343064455ull, 383ull,
     3ull, 9ull,
     {10977649ull, 3073283ull, 394605ull, 1750ull, 19426ull, 19427ull,
      0ull, 0ull, 608ull, 6489ull}},
    // TX 4096B IRQ Aff
    {1175776ull, 4655988603501775579ull, 4608403445210289001ull, 507ull,
     0ull, 30ull,
     {11956441ull, 3485855ull, 448695ull, 2042ull, 20686ull, 20686ull,
      0ull, 0ull, 236ull, 6765ull}},
    // TX 4096B Proc Aff
    {1175776ull, 4655988603501775579ull, 4609419758672741727ull, 409ull,
     15ull, 21ull,
     {14079111ull, 3520120ull, 451101ull, 2012ull, 25243ull, 25244ull,
      0ull, 0ull, 1254ull, 9221ull}},
    // TX 4096B Full Aff
    {1177224ull, 4655998792895932504ull, 4608388583825292769ull, 511ull,
     0ull, 28ull,
     {11940088ull, 3472240ull, 447071ull, 2056ull, 20586ull, 20586ull,
      0ull, 0ull, 253ull, 6821ull}},
    // TX 65536B No Aff
    {1094688ull, 4655417997428987737ull, 4607933660529493168ull, 337ull,
     1ull, 9ull,
     {10218336ull, 2962799ull, 374184ull, 1719ull, 20192ull, 20201ull,
      0ull, 0ull, 962ull, 6082ull}},
    // TX 65536B IRQ Aff
    {1175776ull, 4655988603501775579ull, 4608060659720023502ull, 472ull,
     0ull, 32ull,
     {11240500ull, 3309510ull, 418703ull, 1952ull, 20762ull, 20762ull,
      0ull, 0ull, 1161ull, 6684ull}},
    // TX 65536B Proc Aff
    {1177224ull, 4655998792895932504ull, 4608929545130200104ull, 379ull,
     16ull, 26ull,
     {13071330ull, 3317825ull, 418277ull, 1915ull, 24871ull, 24872ull,
      0ull, 0ull, 1644ull, 8772ull}},
    // TX 65536B Full Aff
    {1175776ull, 4655988603501775579ull, 4608090553461086266ull, 478ull,
     0ull, 32ull,
     {11302936ull, 3334550ull, 421453ull, 1896ull, 20980ull, 20980ull,
      0ull, 0ull, 1162ull, 6652ull}},
    // RX 4096B No Aff
    {834600ull, 4653587790835419709ull, 4612770502795511327ull, 120ull,
     60ull, 60ull,
     {16569199ull, 2784713ull, 430933ull, 1856ull, 17729ull, 17742ull,
      0ull, 0ull, 960ull, 7162ull}},
    // RX 4096B IRQ Aff
    {974848ull, 4654574698398762612ull, 4612969238583039225ull, 238ull,
     0ull, 0ull,
     {20041816ull, 3384622ull, 519885ull, 2152ull, 18067ull, 18197ull,
      0ull, 0ull, 463ull, 13001ull}},
    // RX 4096B Proc Aff
    {834848ull, 4653589535980275316ull, 4612760506251104404ull, 120ull,
     60ull, 60ull,
     {16544473ull, 2771256ull, 428922ull, 1780ull, 17712ull, 17724ull,
      0ull, 0ull, 940ull, 7234ull}},
    // RX 4096B Full Aff
    {970752ull, 4654545875361147440ull, 4612984931360115129ull, 237ull,
     0ull, 0ull,
     {20011728ull, 3377545ull, 518798ull, 2220ull, 17988ull, 18117ull,
      0ull, 0ull, 464ull, 13064ull}},
    // RX 65536B No Aff
    {764544ull, 4653094815561208667ull, 4612247673559983872ull, 0ull,
     17ull, 17ull,
     {13758275ull, 2359956ull, 360793ull, 1486ull, 15587ull, 16020ull,
      0ull, 0ull, 852ull, 5479ull}},
    // RX 65536B IRQ Aff
    {1030976ull, 4654969664086083004ull, 4612671756640778169ull, 96ull,
     0ull, 0ull,
     {20106141ull, 3230497ull, 494349ull, 2090ull, 19231ull, 19453ull,
      0ull, 0ull, 452ull, 13885ull}},
    // RX 65536B Proc Aff
    {764544ull, 4653094815561208667ull, 4612252168800893011ull, 0ull,
     17ull, 17ull,
     {13770485ull, 2359956ull, 360793ull, 1563ull, 15587ull, 16020ull,
      0ull, 0ull, 852ull, 5488ull}},
    // RX 65536B Full Aff
    {1064280ull, 4655204020151692296ull, 4612543779751303098ull, 97ull,
     0ull, 0ull,
     {20271746ull, 3209900ull, 491005ull, 2085ull, 19720ull, 19941ull,
      0ull, 0ull, 445ull, 13758ull}},
};

std::uint64_t
doubleBits(double d)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

core::ResultSet
runGoldenCampaign(double stats_interval_us,
                  core::Campaign::Options opts = {})
{
    core::SystemConfig base;
    base.numConnections = 2;
    base.statsIntervalUs = stats_interval_us;

    core::RunSchedule sched;
    sched.warmup = 2'000'000;
    sched.measure = 10'000'000;

    std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .base(base)
            .schedule(sched)
            .modes({workload::TtcpMode::Transmit,
                    workload::TtcpMode::Receive})
            .sizes({4096u, 65536u})
            .affinities(core::allAffinityModes)
            .build();
    EXPECT_EQ(points.size(), 16u);

    opts.numThreads = 2;
    opts.seed = 42;
    return core::Campaign::run(std::move(points), opts);
}

void
expectGolden(const core::ResultSet &rs)
{
    ASSERT_EQ(rs.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i) {
        SCOPED_TRACE(rs.point(i).label);
        const core::RunResult &r = rs.result(i);
        const GoldenPoint &g = goldenTable[i];
        EXPECT_EQ(r.payloadBytes, g.payloadBytes);
        EXPECT_EQ(doubleBits(r.throughputMbps), g.throughputBits);
        EXPECT_EQ(doubleBits(r.ghzPerGbps), g.ghzPerGbpsBits);
        EXPECT_EQ(r.irqs, g.irqs);
        EXPECT_EQ(r.ipis, g.ipis);
        EXPECT_EQ(r.contextSwitches, g.contextSwitches);
        for (std::size_t e = 0; e < prof::numEvents; ++e)
            EXPECT_EQ(r.eventTotals[e], g.events[e]) << "event " << e;
        // And the steering plumbing reports itself correctly: one
        // queue carrying every frame.
        EXPECT_EQ(r.steeringPolicy, "static");
        ASSERT_EQ(r.rxFramesPerQueue.size(), 1u);
    }
}

TEST(SteeringStaticPaper, BitIdenticalToPreSteeringGolden)
{
    const core::ResultSet rs = runGoldenCampaign(0.0);
    expectGolden(rs);
    // statsIntervalUs = 0: no recorder exists and results carry no
    // interval series.
    for (std::size_t i = 0; i < rs.size(); ++i)
        EXPECT_TRUE(rs.result(i).intervals.empty());
}

// The observability layer armed (interval snapshots every 100 us plus
// a timeline tracer on every point) must not perturb the simulation:
// the snapshot event reads counters but mutates no state and draws no
// random numbers, and the tracer only buffers. Identical goldens, and
// every counter's window deltas must telescope back to its aggregate.
TEST(SteeringStaticPaper, GoldenUnchangedWithObservabilityArmed)
{
    std::vector<std::unique_ptr<sim::TimelineTracer>> tracers(16);
    core::Campaign::Options opts;
    opts.systemHook = [&tracers](core::System &system,
                                 const core::CampaignPoint &,
                                 std::size_t index) {
        tracers[index] = std::make_unique<sim::TimelineTracer>();
        system.setTimelineTracer(tracers[index].get());
    };

    const core::ResultSet rs = runGoldenCampaign(100.0, opts);
    expectGolden(rs);

    for (std::size_t i = 0; i < rs.size(); ++i) {
        SCOPED_TRACE(rs.point(i).label);
        const core::RunResult &r = rs.result(i);
        ASSERT_FALSE(r.intervals.empty());
        for (std::size_t e = 0; e < prof::numEvents; ++e) {
            EXPECT_EQ(
                r.intervals.totalEvent(static_cast<prof::Event>(e)),
                r.eventTotals[e])
                << "event " << e;
        }
        // Per-queue frame deltas telescope too.
        std::uint64_t frames = 0;
        for (const prof::IntervalWindow &w : r.intervals.windows) {
            ASSERT_EQ(w.rxFramesPerQueue.size(), 1u);
            frames += w.rxFramesPerQueue[0];
        }
        EXPECT_EQ(frames, r.rxFramesPerQueue[0]);
        // The tracer saw traffic on every point.
        EXPECT_GT(tracers[i]->eventCount(), 0u);
    }
}

// ---------------------------------------------------------------------
// Policy unit tests.
// ---------------------------------------------------------------------

net::SteeringTopology
topo4()
{
    net::SteeringTopology t;
    t.numCpus = 4;
    t.numNics = 2;
    // The paper's block layout for 4 connections on 4 CPUs.
    t.paperCpu = [](int conn) {
        return static_cast<sim::CpuId>(conn * 4 / 4);
    };
    return t;
}

net::Packet
packetFor(int conn)
{
    net::Packet p;
    p.flow = net::connFlowKey(conn);
    p.seg.len = 1448;
    return p;
}

TEST(Toeplitz, IsDeterministicAndSpreads)
{
    const std::uint32_t h0 = net::toeplitzHash(0);
    const std::uint32_t h1 = net::toeplitzHash(1);
    EXPECT_EQ(h0, net::toeplitzHash(0));
    EXPECT_EQ(h1, net::toeplitzHash(1));
    EXPECT_NE(h0, h1);
    // Zero input has no set bits, so the hash is exactly zero.
    EXPECT_EQ(h0, 0u);
    // Distinct low-entropy inputs (the common small-flow pattern) should
    // not collapse onto a handful of values.
    std::set<std::uint32_t> seen;
    for (std::uint32_t f = 0; f < 64; ++f)
        seen.insert(net::toeplitzHash(f));
    EXPECT_EQ(seen.size(), 64u);
}

TEST(SteeringRss, HashesFlowsAcrossQueuesAndSpreadsVectors)
{
    net::SteeringConfig cfg;
    cfg.kind = net::SteeringKind::Rss;
    cfg.numQueues = 4;
    auto policy = net::makeSteeringPolicy(
        cfg, core::AffinityMode::None, topo4());
    ASSERT_TRUE(policy);
    EXPECT_EQ(policy->name(), "rss");
    EXPECT_EQ(policy->kind(), net::SteeringKind::Rss);
    EXPECT_EQ(policy->numQueues(), 4);

    std::set<int> queues;
    for (int conn = 0; conn < 64; ++conn) {
        const net::Packet p = packetFor(conn);
        const int q = policy->rxQueue(0, p);
        ASSERT_GE(q, 0);
        ASSERT_LT(q, 4);
        // Same flow always lands on the same queue.
        EXPECT_EQ(policy->rxQueue(0, p), q);
        queues.insert(q);
    }
    EXPECT_GT(queues.size(), 1u);

    // Round-robin vector placement: queue q -> CPU q % numCpus.
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(policy->vectorAffinity(0, q), 1u << q);
    // RSS steers interrupts only; processes stay free.
    EXPECT_EQ(policy->taskAffinity(0), 0xffffffffu);
    // And there is no flow table behind it.
    EXPECT_EQ(policy->stats().flowLearns, 0u);
}

TEST(SteeringRss, HonoursExplicitQueueAndPinMaps)
{
    net::SteeringConfig cfg;
    cfg.kind = net::SteeringKind::Rss;
    cfg.numQueues = 2;
    cfg.queueCpus = {3, 1};
    cfg.pinCpus = {2};
    auto policy = net::makeSteeringPolicy(
        cfg, core::AffinityMode::None, topo4());
    EXPECT_EQ(policy->vectorAffinity(0, 0), 1u << 3);
    EXPECT_EQ(policy->vectorAffinity(0, 1), 1u << 1);
    EXPECT_EQ(policy->taskAffinity(0), 1u << 2);
    EXPECT_EQ(policy->taskAffinity(7), 1u << 2);
}

TEST(SteeringFlowDirector, LearnsMatchesAndMigrates)
{
    net::SteeringConfig cfg;
    cfg.kind = net::SteeringKind::FlowDirector;
    cfg.numQueues = 4;
    auto policy = net::makeSteeringPolicy(
        cfg, core::AffinityMode::None, topo4());
    EXPECT_EQ(policy->name(), "flow_director");

    const net::Packet p = packetFor(5);

    // Before any transmit the flow is unknown: RSS fallback, a miss.
    const int fallback = policy->rxQueue(0, p);
    EXPECT_EQ(policy->stats().flowMisses, 1u);
    EXPECT_EQ(policy->stats().flowMatches, 0u);

    // A transmit from CPU 2 installs flow -> queue 2 (queue q's vector
    // targets CPU q under the round-robin map).
    policy->noteTransmit(0, p, 2);
    EXPECT_EQ(policy->stats().flowLearns, 1u);
    EXPECT_EQ(policy->rxQueue(0, p), 2);
    EXPECT_EQ(policy->stats().flowMatches, 1u);

    // Re-transmitting from the same CPU is not a migration.
    policy->noteTransmit(0, p, 2);
    EXPECT_EQ(policy->stats().flowMigrations, 0u);

    // The sender moving to CPU 1 re-steers the flow.
    policy->noteTransmit(0, p, 1);
    EXPECT_EQ(policy->stats().flowMigrations, 1u);
    EXPECT_EQ(policy->rxQueue(0, p), 1);

    // Flows are keyed per NIC: NIC 1 never saw this connection.
    const int other = policy->rxQueue(1, p);
    EXPECT_EQ(other, fallback); // same RSS hash fallback
    EXPECT_EQ(policy->stats().flowMisses, 2u);
}

TEST(SteeringFlowDirector, FullTableStopsLearning)
{
    net::SteeringConfig cfg;
    cfg.kind = net::SteeringKind::FlowDirector;
    cfg.numQueues = 2;
    cfg.flowTableSize = 2;
    auto policy = net::makeSteeringPolicy(
        cfg, core::AffinityMode::None, topo4());

    policy->noteTransmit(0, packetFor(0), 0);
    policy->noteTransmit(0, packetFor(1), 1);
    EXPECT_EQ(policy->stats().flowLearns, 2u);

    // Third distinct flow: table is full, it stays on the hash path.
    policy->noteTransmit(0, packetFor(2), 0);
    EXPECT_EQ(policy->stats().flowLearns, 2u);
    policy->rxQueue(0, packetFor(2));
    EXPECT_EQ(policy->stats().flowMisses, 1u);

    // Existing entries still update (migration is not a new learn).
    policy->noteTransmit(0, packetFor(1), 0);
    EXPECT_EQ(policy->stats().flowMigrations, 1u);
}

TEST(SteeringStaticPaper, ReproducesPaperMasks)
{
    net::SteeringConfig cfg; // defaults: StaticPaper, 1 queue
    const net::SteeringTopology t = topo4();

    // IRQ-pinning modes target the paper CPU for the NIC; others leave
    // the Linux 2.4 default of CPU0.
    for (core::AffinityMode m : core::allAffinityModes) {
        auto policy = net::makeSteeringPolicy(cfg, m, t);
        EXPECT_EQ(policy->rxQueue(0, packetFor(0)), 0);
        const std::uint32_t vec = policy->vectorAffinity(2, 0);
        if (core::pinsIrqs(m))
            EXPECT_EQ(vec, 1u << t.paperCpu(2));
        else
            EXPECT_EQ(vec, 0x1u);
        const std::uint32_t task = policy->taskAffinity(3);
        if (core::pinsProcs(m))
            EXPECT_EQ(task, 1u << t.paperCpu(3));
        else
            EXPECT_EQ(task, 0xffffffffu);
    }

    // With 2.6-style rotation enabled the balancer ignores static
    // masks: the policy provisions every installed CPU.
    net::SteeringTopology rot = topo4();
    rot.rotationEnabled = true;
    auto policy =
        net::makeSteeringPolicy(cfg, core::AffinityMode::Irq, rot);
    EXPECT_EQ(policy->vectorAffinity(0, 0), 0xfu);
}

} // namespace
