/**
 * @file
 * Streaming JSONL results: campaign streaming, the shared v2-v5
 * record ladder, crash tolerance, resume semantics, and shard merge
 * byte-identity with an unsharded run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/campaign.hh"
#include "src/core/point_key.hh"
#include "src/core/results_json.hh"
#include "src/core/results_jsonl.hh"
#include "src/core/sweep.hh"

using namespace na;

namespace {

core::RunSchedule
tinySchedule()
{
    core::RunSchedule s;
    s.warmup = 2'000'000;   // 1 ms
    s.measure = 10'000'000; // 5 ms
    return s;
}

std::vector<core::CampaignPoint>
tinyPoints()
{
    core::SystemConfig base;
    base.numConnections = 2;
    return core::SweepBuilder()
        .base(base)
        .schedule(tinySchedule())
        .size(1024)
        .affinities({core::AffinityMode::None,
                     core::AffinityMode::Full})
        .build();
}

/** Temp-file path that is removed when the test ends. */
class TempPath
{
  public:
    explicit TempPath(const char *name)
        : p(::testing::TempDir() + name)
    {
        std::remove(p.c_str());
    }
    ~TempPath() { std::remove(p.c_str()); }
    const std::string &str() const { return p; }

  private:
    std::string p;
};

std::string
documentBytes(const core::ResultSet &rs)
{
    std::ostringstream os;
    core::writeResultsJson(os, rs);
    return os.str();
}

/** A complete minimal record body shared by the ladder tests. */
const char *const recordBody =
    "\"label\": \"L\", \"config\": {\"mode\": \"tx\", "
    "\"msg_size\": 1024, \"affinity\": \"full\", "
    "\"connections\": 2, \"cpus\": 2, \"seed\": 99, "
    "\"steering\": \"static\", \"queues\": 1}, "
    "\"result\": {\"seconds\": 0.5, \"payload_bytes\": 1000, "
    "\"throughput_mbps\": 16.5, \"cpu_util\": 0.5, "
    "\"ghz_per_gbps\": 1.25, \"util_per_cpu\": [0.5, 0.5], "
    "\"irqs\": 10, \"ipis\": 2, \"migrations\": 1, "
    "\"context_switches\": 5, \"rx_frames_per_queue\": [3], "
    "\"event_totals\": {}}";

TEST(ResultsJsonl, CampaignStreamsOneRecordPerPoint)
{
    TempPath path("jsonl_stream.jsonl");
    core::Campaign::Options opts;
    opts.numThreads = 1;
    opts.jsonlPath = path.str();

    const core::ResultSet rs =
        core::Campaign::run(tinyPoints(), opts);
    ASSERT_EQ(rs.size(), 2u);

    const core::JsonlFile file =
        core::readResultsJsonlFile(path.str());
    EXPECT_FALSE(file.truncatedTail);
    ASSERT_EQ(file.records.size(), 2u);
    for (const core::JsonlRecord &r : file.records) {
        EXPECT_NE(r.key, 0u);
        EXPECT_EQ(r.schemaVersion, core::resultsSchemaVersion);
    }
    EXPECT_NE(file.records[0].key, file.records[1].key);

    // Streamed records carry the same payload the ResultSet does
    // (ordering may differ under threads; here numThreads == 1).
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(file.records[i].rec.label, rs.point(i).label);
        EXPECT_EQ(file.records[i].rec.result.throughputMbps,
                  rs.result(i).throughputMbps);
        EXPECT_EQ(file.records[i].rec.result.payloadBytes,
                  rs.result(i).payloadBytes);
    }
}

TEST(ResultsJsonl, MonolithicAndJsonlReadersAgreeAcrossLadder)
{
    // The same v2-v6 record payload must parse identically whichever
    // container carried it (per-file schema_version vs per-line
    // schema token).
    for (int version = 2; version <= core::resultsSchemaVersion;
         ++version) {
        std::ostringstream mono;
        mono << "{\"schema_version\": " << version
             << ", \"campaign_seed\": 1, \"threads\": 1, "
             << "\"points\": [{" << recordBody << "}]}";
        std::istringstream mono_in(mono.str());
        const core::JsonCampaign doc =
            core::readResultsJson(mono_in);
        ASSERT_EQ(doc.points.size(), 1u) << "version " << version;

        std::ostringstream line;
        line << "{\"schema\": " << version
             << ", \"point_key\": \"00000000000000aa\", "
             << recordBody << "}\n";
        std::istringstream jsonl_in(line.str());
        const core::JsonlFile file = core::readResultsJsonl(jsonl_in);
        ASSERT_EQ(file.records.size(), 1u) << "version " << version;
        EXPECT_EQ(file.records[0].schemaVersion, version);
        EXPECT_EQ(file.records[0].key, 0xaau);

        const core::JsonRunRecord &a = doc.points[0];
        const core::JsonRunRecord &b = file.records[0].rec;
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.mode, b.mode);
        EXPECT_EQ(a.msgSize, b.msgSize);
        EXPECT_EQ(a.affinity, b.affinity);
        EXPECT_EQ(a.connections, b.connections);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.result.seconds, b.result.seconds);
        EXPECT_EQ(a.result.payloadBytes, b.result.payloadBytes);
        EXPECT_EQ(a.result.throughputMbps, b.result.throughputMbps);
        EXPECT_EQ(a.result.irqs, b.result.irqs);
    }
}

TEST(ResultsJsonl, TruncatedFinalLineIsToleratedAndRepaired)
{
    TempPath path("jsonl_torn.jsonl");
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "{\"schema\": 5, \"point_key\": "
               "\"0000000000000001\", "
            << recordBody << "}\n";
        out << "{\"schema\": 5, \"point_key\": "
               "\"0000000000000002\", "
            << recordBody << "}\n";
        out << "{\"schema\": 5, \"point_"; // torn mid-write
    }

    const core::JsonlFile file =
        core::readResultsJsonlFile(path.str());
    EXPECT_TRUE(file.truncatedTail);
    ASSERT_EQ(file.records.size(), 2u);

    // The appender truncates the torn tail so the stream stays
    // well-formed for every subsequent reader.
    {
        core::JsonlAppender appender(path.str());
        ASSERT_TRUE(appender.ok());
        core::CampaignPoint point;
        point.label = "appended";
        point.config.numConnections = 2;
        core::RunResult result;
        ASSERT_TRUE(appender.append(point, result, 3));
    }
    const core::JsonlFile repaired =
        core::readResultsJsonlFile(path.str());
    EXPECT_FALSE(repaired.truncatedTail);
    ASSERT_EQ(repaired.records.size(), 3u);
    EXPECT_EQ(repaired.records[2].key, 3u);
    EXPECT_EQ(repaired.records[2].rec.label, "appended");
}

TEST(ResultsJsonl, MalformedInteriorLineIsAHardError)
{
    std::ostringstream text;
    text << "{\"schema\": 5, \"point_key\": \"0000000000000001\", "
         << recordBody << "}\n";
    text << "this is not json\n";
    text << "{\"schema\": 5, \"point_key\": \"0000000000000002\", "
         << recordBody << "}\n";
    std::istringstream in(text.str());
    try {
        (void)core::readResultsJsonl(in);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ResultsJsonl, UnsupportedSchemaTokenIsAStructuredError)
{
    std::ostringstream text;
    text << "{\"schema\": 7, \"point_key\": \"0000000000000001\", "
         << recordBody << "}\n";
    std::istringstream in(text.str());
    try {
        (void)core::readResultsJsonl(in);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unsupported schema token 7"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    }
}

TEST(ResultsJsonl, MissingFileThrowsInsteadOfLookingEmpty)
{
    EXPECT_THROW(
        (void)core::readResultsJsonlFile("/nonexistent/nope.jsonl"),
        std::runtime_error);
}

TEST(ResultsJsonl, DuplicateKeyLastRecordWins)
{
    std::ostringstream text;
    text << "{\"schema\": 5, \"point_key\": \"0000000000000001\", "
         << recordBody << "}\n";
    // Same key again — a resume re-ran the point; the newer record
    // supersedes.
    std::string second(recordBody);
    const std::string from = "\"throughput_mbps\": 16.5";
    second.replace(second.find(from), from.size(),
                   "\"throughput_mbps\": 99.5");
    text << "{\"schema\": 5, \"point_key\": \"0000000000000001\", "
         << second << "}\n";

    std::istringstream in(text.str());
    const core::JsonlFile file = core::readResultsJsonl(in);
    ASSERT_EQ(file.records.size(), 2u);
    const auto latest = file.latestByKey();
    ASSERT_EQ(latest.size(), 1u);
    EXPECT_EQ(latest.at(1), 1u);

    const std::vector<core::JsonlRecord> merged =
        core::mergeShardFiles({file});
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].rec.result.throughputMbps, 99.5);
}

TEST(ResultsJsonl, CrossShardDuplicateKeyThrows)
{
    std::istringstream a_in(
        std::string("{\"schema\": 5, \"point_key\": "
                    "\"0000000000000001\", ") +
        recordBody + "}\n");
    std::istringstream b_in(
        std::string("{\"schema\": 5, \"point_key\": "
                    "\"0000000000000001\", ") +
        recordBody + "}\n");
    const core::JsonlFile a = core::readResultsJsonl(a_in);
    const core::JsonlFile b = core::readResultsJsonl(b_in);
    try {
        (void)core::mergeShardFiles({a, b});
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("0000000000000001"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
    }
}

TEST(ResultsJsonl, ResumeSkipsCompletedAndRerunsFailed)
{
    std::vector<core::CampaignPoint> points = tinyPoints();
    core::Campaign::Options opts;
    opts.numThreads = 1;

    // Reference run: both points, streamed.
    TempPath full_path("jsonl_full.jsonl");
    core::Campaign::Options full_opts = opts;
    full_opts.jsonlPath = full_path.str();
    const core::ResultSet reference =
        core::Campaign::run(points, full_opts);
    ASSERT_EQ(reference.failureCount(), 0u);

    // Build a resume file where point 0's record is a *failure* and
    // point 1's is the real result: a crashed sweep whose first point
    // degraded.
    std::vector<core::CampaignPoint> keyed = points;
    core::Campaign::applyPointSeeds(keyed, opts);
    const std::vector<std::uint64_t> keys =
        core::Campaign::pointKeys(keyed);
    TempPath resume_path("jsonl_resume.jsonl");
    {
        std::ofstream out(resume_path.str(), std::ios::binary);
        core::RunResult failed;
        failed.failed = true;
        failed.failure.reason = "synthetic failure";
        failed.failure.attempts = 2;
        core::writeJsonlRecord(out, keyed[0], failed, keys[0]);
        core::writeJsonlRecord(out, keyed[1], reference.result(1),
                               keys[1]);
    }

    // Resume: the failed point re-runs, the completed one is
    // prefilled and skipped.
    std::vector<int> executions(points.size(), 0);
    std::size_t resumed_seen = 0;
    core::Campaign::Options resume_opts = opts;
    resume_opts.resumeFrom = resume_path.str();
    resume_opts.jsonlPath = resume_path.str();
    resume_opts.systemHook = [&](core::System &,
                                 const core::CampaignPoint &,
                                 std::size_t index) {
        executions[index] += 1;
    };
    resume_opts.progressHook =
        [&](const core::Campaign::Progress &p) {
            resumed_seen = p.resumed;
        };
    const core::ResultSet resumed =
        core::Campaign::run(points, resume_opts);

    EXPECT_EQ(executions[0], 1) << "failed point must re-run";
    EXPECT_EQ(executions[1], 0) << "completed point must be skipped";
    EXPECT_EQ(resumed_seen, 1u);
    EXPECT_EQ(resumed.failureCount(), 0u);

    // The re-run used exactly the seed an un-resumed campaign would:
    // its result matches the reference bit for bit, and the schema
    // fields of the prefilled point survive the round trip.
    EXPECT_EQ(resumed.result(0).throughputMbps,
              reference.result(0).throughputMbps);
    EXPECT_EQ(resumed.result(0).payloadBytes,
              reference.result(0).payloadBytes);
    EXPECT_EQ(resumed.result(1).throughputMbps,
              reference.result(1).throughputMbps);
    EXPECT_EQ(resumed.result(1).seconds, reference.result(1).seconds);

    // The stream now ends with the re-run's fresh record, which
    // supersedes the failure: assembling from it reproduces the
    // reference document byte for byte.
    const core::JsonlFile stream =
        core::readResultsJsonlFile(resume_path.str());
    const core::ResultSet assembled = core::assembleResultSet(
        points, opts, core::mergeShardFiles({stream}),
        reference.threadsUsed);
    EXPECT_EQ(documentBytes(assembled), documentBytes(reference));
}

TEST(ResultsJsonl, ShardedRunsMergeByteIdenticalToUnsharded)
{
    std::vector<core::CampaignPoint> points = tinyPoints();
    core::Campaign::Options opts;
    opts.numThreads = 1;
    const core::ResultSet reference =
        core::Campaign::run(points, opts);

    TempPath shard0("jsonl_shard0.jsonl");
    TempPath shard1("jsonl_shard1.jsonl");
    for (int s = 0; s < 2; ++s) {
        core::Campaign::Options shard_opts = opts;
        shard_opts.shardIndex = s;
        shard_opts.shardCount = 2;
        shard_opts.jsonlPath =
            s == 0 ? shard0.str() : shard1.str();
        (void)core::Campaign::run(points, shard_opts);
    }

    const std::vector<core::JsonlRecord> merged =
        core::mergeShardFiles(
            {core::readResultsJsonlFile(shard0.str()),
             core::readResultsJsonlFile(shard1.str())});
    const core::ResultSet assembled = core::assembleResultSet(
        points, opts, merged, reference.threadsUsed);
    EXPECT_EQ(documentBytes(assembled), documentBytes(reference));
}

TEST(ResultsJsonl, InvalidShardOptionsThrow)
{
    core::Campaign::Options opts;
    opts.numThreads = 1;
    opts.shardCount = 2;
    opts.shardIndex = 2;
    EXPECT_THROW((void)core::Campaign::run(tinyPoints(), opts),
                 std::runtime_error);
    opts.shardIndex = -1;
    EXPECT_THROW((void)core::Campaign::run(tinyPoints(), opts),
                 std::runtime_error);
    opts.shardIndex = 0;
    opts.shardCount = 0;
    EXPECT_THROW((void)core::Campaign::run(tinyPoints(), opts),
                 std::runtime_error);
}

TEST(ResultsJsonl, AssembleThrowsOnMissingPoints)
{
    std::vector<core::CampaignPoint> points = tinyPoints();
    core::Campaign::Options opts;
    opts.numThreads = 1;
    try {
        (void)core::assembleResultSet(points, opts, {}, 1);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        // Every missing label must be named.
        const std::string msg = e.what();
        EXPECT_NE(msg.find(points[0].label), std::string::npos)
            << msg;
        EXPECT_NE(msg.find(points[1].label), std::string::npos)
            << msg;
    }
}

TEST(ResultsJsonl, MonolithicConvertersRoundTrip)
{
    core::Campaign::Options opts;
    opts.numThreads = 1;
    const core::ResultSet rs = core::Campaign::run(tinyPoints(), opts);
    const std::string doc = documentBytes(rs);

    // monolithic -> records -> monolithic is byte-identical: both
    // writers share the record emitter.
    std::istringstream in(doc);
    const core::JsonCampaign parsed = core::readResultsJson(in);
    const std::vector<core::JsonlRecord> records =
        core::recordsFromMonolithic(parsed);
    ASSERT_EQ(records.size(), rs.size());
    for (const core::JsonlRecord &r : records)
        EXPECT_EQ(r.key, 0u) << "converted records carry no key";

    std::ostringstream out;
    core::writeMonolithicFromRecords(out, parsed.campaignSeed,
                                     parsed.threads, records);
    EXPECT_EQ(out.str(), doc);
}

TEST(ResultsJsonl, JsonlStreamedDocumentMatchesMonolithic)
{
    // End to end: stream a campaign to JSONL, rebuild the monolithic
    // document from the stream alone, compare with the document the
    // ResultSet writes directly.
    std::vector<core::CampaignPoint> points = tinyPoints();
    TempPath path("jsonl_roundtrip.jsonl");
    core::Campaign::Options opts;
    opts.numThreads = 1;
    opts.jsonlPath = path.str();
    const core::ResultSet rs = core::Campaign::run(points, opts);

    const core::JsonlFile file =
        core::readResultsJsonlFile(path.str());
    const core::ResultSet assembled = core::assembleResultSet(
        points, opts, core::mergeShardFiles({file}), rs.threadsUsed);
    EXPECT_EQ(documentBytes(assembled), documentBytes(rs));
}

} // namespace
