/**
 * @file
 * NIC edge cases: ring overflow, interrupt masking, replenish failure,
 * TX-completion skb freeing — driven through small assembled systems.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/system.hh"

using namespace na;
using namespace na::core;

namespace {

TEST(NicEdge, TinyRxRingDropsAndTcpRecovers)
{
    SystemConfig cfg;
    cfg.numConnections = 1;
    cfg.ttcp().mode = workload::TtcpMode::Receive;
    cfg.ttcp().msgSize = 65536;
    cfg.nic.rxRingSize = 8; // absurdly small: bursts overflow
    cfg.nic.irqGapTicks = 400'000; // slow service: ring backs up
    cfg.tcp.rtoTicks = 10'000'000;
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(100'000'000);

    // Drops happened, yet the app still made forward progress and
    // never saw out-of-order data.
    EXPECT_GT(sys.nic(0).rxDropsRingFull.value(), 0.0);
    EXPECT_GT(sys.app(0).bytesRead(), 20'000u);
    EXPECT_GT(sys.peer(0).tcp().retransmitCount(), 0u);
}

TEST(NicEdge, InterruptStaysMaskedUntilDrained)
{
    SystemConfig cfg;
    cfg.numConnections = 1;
    cfg.ttcp().mode = workload::TtcpMode::Transmit;
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(20'000'000);
    // IRQs raised must be far fewer than frames handled (batching).
    EXPECT_LT(sys.nic(0).irqsRaised.value(),
              sys.nic(0).rxFrames.value() + sys.nic(0).txFrames.value());
}

TEST(NicEdge, ControlSkbsFreedOnTxComplete)
{
    // RX mode: the SUT sends only ACK/control frames; their skbs are
    // freed at TX completion. Without that path the pool would drain.
    SystemConfig cfg;
    cfg.numConnections = 1;
    cfg.ttcp().mode = workload::TtcpMode::Receive;
    cfg.skbPoolSlots = cfg.nic.rxRingSize + 64; // tight
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(60'000'000);
    EXPECT_GT(sys.socket(0).segsOut.value(), 100.0);
    EXPECT_EQ(sys.skbPool().exhausted.value(), 0.0)
        << "control skbs leaked";
}

TEST(NicEdge, MmioAndRingsLiveInTheRightRegions)
{
    SystemConfig cfg;
    cfg.numConnections = 1;
    System sys(cfg);
    EXPECT_TRUE(mem::AddressAllocator::isUncacheable(
        sys.nic(0).mmioAddr()));
}

TEST(ExperimentApi, EstablishDeadlineFailureReturnsFalse)
{
    SystemConfig cfg;
    cfg.numConnections = 8;
    System sys(cfg);
    // 1000 ticks is far too short for even one handshake RTT.
    EXPECT_FALSE(sys.establishAll(1000));
}

TEST(ExperimentApi, ExtractComputesDerivedMetrics)
{
    SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.ttcp().msgSize = 8192;
    System sys(cfg);
    RunSchedule sched;
    sched.warmup = 10'000'000;
    sched.measure = 20'000'000;
    const RunResult r = Experiment::measure(sys, sched);

    // throughput == bytes*8/seconds
    EXPECT_NEAR(r.throughputMbps,
                static_cast<double>(r.payloadBytes) * 8.0 / r.seconds /
                    1e6,
                0.01);
    // ghzPerGbps == aggregate busy GHz / Gbps
    double busy = 0;
    for (int c = 0; c < cfg.platform.numCpus; ++c)
        busy += sys.kernel().core(c).counters.busyCycles.value();
    const double used_ghz = busy / r.seconds / 1e9;
    EXPECT_NEAR(r.ghzPerGbps, used_ghz / (r.throughputMbps / 1000.0),
                r.ghzPerGbps * 0.01);
    // eventsPerByte consistent with totals.
    EXPECT_NEAR(r.eventsPerByte(prof::Event::Cycles),
                static_cast<double>(r.overall.cycles) /
                    static_cast<double>(r.payloadBytes),
                1e-9);
}

TEST(ExperimentApi, BeginMeasurementResetsStats)
{
    SystemConfig cfg;
    cfg.numConnections = 1;
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(20'000'000);
    EXPECT_GT(sys.kernel().accounting().total(prof::Event::Cycles), 0u);
    sys.beginMeasurement();
    EXPECT_EQ(sys.kernel().accounting().total(prof::Event::Cycles), 0u);
    EXPECT_EQ(sys.kernel().core(0).counters.busyCycles.value(), 0.0);
    // Warmup-established connections keep working after the reset.
    sys.runFor(20'000'000);
    EXPECT_GT(sys.kernel().accounting().total(prof::Event::Cycles), 0u);
}

TEST(ExperimentApi, UtilizationNeverExceedsOne)
{
    SystemConfig cfg;
    cfg.numConnections = 4;
    cfg.ttcp().msgSize = 1024;
    System sys(cfg);
    const RunResult r = Experiment::measure(sys);
    for (int c = 0; c < cfg.platform.numCpus; ++c) {
        EXPECT_LE(r.utilPerCpu[static_cast<std::size_t>(c)], 1.0001);
        // busy+idle == wall time within one dispatch of slop.
        const auto &pc = sys.kernel().core(c).counters;
        EXPECT_NEAR(pc.totalCycles(), 100'000'000.0, 2'000'000.0);
    }
}

} // namespace

namespace {

TEST(ExperimentApi, ConvergenceModeExtendsUntilStable)
{
    SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.ttcp().msgSize = 8192;

    // Fixed single short window...
    System fixed(cfg);
    RunSchedule one;
    one.warmup = 10'000'000;
    one.measure = 10'000'000;
    const RunResult rf = Experiment::measure(fixed, one);

    // ...versus convergence over up to 8 such windows.
    System conv(cfg);
    RunSchedule many = one;
    many.maxWindows = 8;
    many.convergeTolerance = 0.01;
    const RunResult rc = Experiment::measure(conv, many);

    EXPECT_GT(rc.seconds, rf.seconds);
    EXPECT_LE(rc.seconds, 8 * rf.seconds + 1e-9);
    // Both estimate the same steady-state rate, converged tighter.
    EXPECT_NEAR(rc.throughputMbps, rf.throughputMbps,
                rf.throughputMbps * 0.15);
}

} // namespace
