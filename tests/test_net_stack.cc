/**
 * @file
 * Integration tests of the full SUT network stack: NIC rings and
 * interrupt moderation, driver softirq path, sockets with blocking
 * semantics, end-to-end data conservation against the remote peers.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/system.hh"
#include "src/net/peer.hh"

using namespace na;
using namespace na::core;

namespace {

SystemConfig
smallConfig(workload::TtcpMode mode, int conns = 2,
            std::uint32_t msg = 8192)
{
    SystemConfig cfg;
    cfg.numConnections = conns;
    cfg.ttcp().mode = mode;
    cfg.ttcp().msgSize = msg;
    return cfg;
}

TEST(NetStack, ConnectionsEstablish)
{
    System sys(smallConfig(workload::TtcpMode::Transmit));
    EXPECT_TRUE(sys.establishAll(4'000'000'000));
    for (int i = 0; i < sys.numConnections(); ++i) {
        EXPECT_TRUE(sys.socket(i).established());
        EXPECT_EQ(sys.peer(i).tcp().state(),
                  net::TcpState::Established);
    }
}

TEST(NetStack, TransmitConservesBytes)
{
    System sys(smallConfig(workload::TtcpMode::Transmit));
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(40'000'000); // 20 ms
    for (int i = 0; i < sys.numConnections(); ++i) {
        const auto sent = sys.socket(i).tcp().appendedBytes();
        const auto delivered = sys.peer(i).bytesReceived();
        EXPECT_GT(sent, 0u);
        EXPECT_LE(delivered, sent);
        // Everything unaccounted is bounded by one send buffer.
        EXPECT_LE(sent - delivered,
                  sys.config().tcp.sndBufBytes + sys.config().tcp.mss);
        // Delivery is acked data: acked <= delivered guarantees no
        // phantom acks.
        EXPECT_LE(sys.socket(i).tcp().ackedBytes(), delivered);
    }
}

TEST(NetStack, ReceiveConservesBytes)
{
    System sys(smallConfig(workload::TtcpMode::Receive));
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(40'000'000);
    for (int i = 0; i < sys.numConnections(); ++i) {
        const auto peer_sent = sys.peer(i).tcp().appendedBytes();
        const auto delivered = sys.socket(i).tcp().deliveredBytes();
        const auto read = sys.app(i).bytesRead();
        EXPECT_GT(read, 0u);
        EXPECT_LE(delivered, peer_sent);
        EXPECT_LE(read, delivered);
        // Unread data bounded by the receive window.
        EXPECT_LE(delivered - read, sys.config().tcp.rcvWndBytes);
    }
}

TEST(NetStack, SkbPoolNeverLeaks)
{
    System sys(smallConfig(workload::TtcpMode::Transmit));
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(60'000'000);
    // Free + in-TX-queues + RX ring pinned == capacity. Since rings pin
    // rxRingSize each and sockets hold their send queues, just check we
    // never exhausted and frees track allocs.
    EXPECT_EQ(sys.skbPool().exhausted.value(), 0.0);
    EXPECT_LE(sys.skbPool().frees.value(), sys.skbPool().allocs.value());
    const double outstanding =
        sys.skbPool().allocs.value() - sys.skbPool().frees.value();
    // Outstanding skbs bounded by send queues + replenished rings.
    EXPECT_LT(outstanding,
              sys.numConnections() *
                  (sys.config().tcp.sndBufBytes / sys.config().tcp.mss +
                   sys.config().nic.rxRingSize + 16));
}

TEST(NetStack, NicModerationBoundsInterruptRate)
{
    SystemConfig cfg = smallConfig(workload::TtcpMode::Transmit, 1);
    cfg.nic.irqGapTicks = 100'000; // 50 us between interrupts
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    const double before = sys.nic(0).irqsRaised.value();
    const sim::Tick t0 = sys.eventQueue().now();
    sys.runFor(40'000'000);
    const double raised = sys.nic(0).irqsRaised.value() - before;
    const double seconds = sim::ticksToSeconds(
        sys.eventQueue().now() - t0, cfg.platform.freqHz);
    EXPECT_LE(raised, seconds * 2.0e4 * 1.1); // <= 20k/s + slack
    EXPECT_GT(raised, 0.0);
}

TEST(NetStack, TightModerationRaisesIrqRate)
{
    double rates[2] = {0, 0};
    int idx = 0;
    for (sim::Tick gap : {200'000ULL, 8'000ULL}) {
        SystemConfig cfg = smallConfig(workload::TtcpMode::Transmit, 1);
        cfg.nic.irqGapTicks = gap;
        System sys(cfg);
        ASSERT_TRUE(sys.establishAll(4'000'000'000));
        sys.runFor(30'000'000);
        rates[idx++] = sys.nic(0).irqsRaised.value();
    }
    EXPECT_GT(rates[1], rates[0] * 1.5);
}

TEST(NetStack, IsrRunsOnConfiguredCpu)
{
    SystemConfig cfg = smallConfig(workload::TtcpMode::Transmit, 2);
    cfg.affinity = AffinityMode::Irq; // NIC0 -> CPU0, NIC1 -> CPU1
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(30'000'000);
    auto &acct = sys.kernel().accounting();
    // NIC1's ISR symbol must only accumulate on CPU1.
    EXPECT_EQ(acct.get(0, prof::nicIrqFunc(1), prof::Event::Cycles), 0u);
    EXPECT_GT(acct.get(1, prof::nicIrqFunc(1), prof::Event::Cycles), 0u);
    EXPECT_GT(acct.get(0, prof::nicIrqFunc(0), prof::Event::Cycles), 0u);
}

TEST(NetStack, DefaultRoutingSendsAllIrqsToCpu0)
{
    System sys(smallConfig(workload::TtcpMode::Transmit, 2));
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(30'000'000);
    auto &acct = sys.kernel().accounting();
    for (int nic = 0; nic < 2; ++nic) {
        EXPECT_GT(acct.get(0, prof::nicIrqFunc(nic),
                           prof::Event::Cycles),
                  0u);
        EXPECT_EQ(acct.get(1, prof::nicIrqFunc(nic),
                           prof::Event::Cycles),
                  0u);
    }
}

TEST(NetStack, RxPayloadIsAlwaysCacheCold)
{
    // The paper's key copy fact: RX copies miss (DMA), TX copies hit.
    System rx(smallConfig(workload::TtcpMode::Receive, 2, 16384));
    ASSERT_TRUE(rx.establishAll(4'000'000'000));
    rx.beginMeasurement();
    rx.runFor(30'000'000);
    const auto rx_copy_instr = rx.kernel().accounting().byFunc(
        prof::FuncId::CopyToUser, prof::Event::Instructions);
    const auto rx_copy_miss = rx.kernel().accounting().byFunc(
        prof::FuncId::CopyToUser, prof::Event::LlcMisses);
    ASSERT_GT(rx_copy_instr, 0u);
    const double rx_mpi = static_cast<double>(rx_copy_miss) /
                          static_cast<double>(rx_copy_instr);
    EXPECT_GT(rx_mpi, 0.05) << "RX copies must be DMA-cold";
}

TEST(NetStack, SegmentsFlowThroughDriverDemux)
{
    System sys(smallConfig(workload::TtcpMode::Transmit));
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(20'000'000);
    EXPECT_GT(sys.driver().framesDelivered.value(), 0.0);
    EXPECT_GT(sys.driver().softirqRuns.value(), 0.0);
    EXPECT_EQ(sys.driver().socketFor(net::connFlowKey(0)),
              &sys.socket(0));
    EXPECT_EQ(sys.driver().socketFor(net::connFlowKey(99)), nullptr);
}

TEST(NetStack, NagleCoalescesSmallWrites)
{
    // 128-byte writes must leave in (mostly) MSS-sized frames.
    System sys(smallConfig(workload::TtcpMode::Transmit, 1, 128));
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(40'000'000);
    const double frames = sys.nic(0).txFrames.value();
    const auto bytes = sys.peer(0).bytesReceived();
    ASSERT_GT(frames, 0.0);
    const double payload_per_frame =
        static_cast<double>(bytes) / frames;
    // Far larger than 128: Nagle coalesced (frames include ACKs, so
    // the average is diluted; still >> 128).
    EXPECT_GT(payload_per_frame, 400.0);
}

TEST(NetStack, WireLossIsSurvived)
{
    SystemConfig cfg = smallConfig(workload::TtcpMode::Transmit, 2);
    cfg.wireLossProb = 0.02;
    cfg.tcp.rtoTicks = 10'000'000; // 5 ms RTO keeps the test fast
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    sys.runFor(80'000'000);
    std::uint64_t delivered = 0;
    std::uint64_t retx = 0;
    for (int i = 0; i < sys.numConnections(); ++i) {
        delivered += sys.peer(i).bytesReceived();
        retx += sys.socket(i).tcp().retransmitCount();
    }
    EXPECT_GT(delivered, 100'000u) << "transfer stalled under loss";
    EXPECT_GT(retx, 0u);
}

/** ttcp-like writer that closes after a fixed volume. */
class CloseAfterLogic : public os::TaskLogic
{
  public:
    CloseAfterLogic(net::Socket &s, sim::Addr buf, std::uint64_t total)
        : s(s), buf(buf), total(total)
    {
    }

    os::StepStatus
    step(os::ExecContext &ctx) override
    {
        if (!s.established()) {
            s.connect(ctx);
            return s.established() ? os::StepStatus::Continue
                                   : os::StepStatus::Blocked;
        }
        if (sent < total) {
            sent += s.send(ctx, buf,
                           static_cast<std::uint32_t>(
                               std::min<std::uint64_t>(total - sent,
                                                       8192)));
            return ctx.task->state == os::TaskState::Blocked
                       ? os::StepStatus::Blocked
                       : os::StepStatus::Continue;
        }
        if (!closed) {
            s.close(ctx);
            closed = true;
        }
        return os::StepStatus::Exited;
    }

    net::Socket &s;
    sim::Addr buf;
    std::uint64_t total;
    std::uint64_t sent = 0;
    bool closed = false;
};

TEST(NetStack, CloseDrainsDataThenFins)
{
    // Hand-built 1-connection rig whose app closes after 256 KiB.
    stats::Group root(nullptr, "");
    sim::EventQueue eq;
    os::Kernel kernel(&root, eq, cpu::PlatformConfig{});
    net::SkbPool pool(&root, kernel, 1024);
    net::Driver driver(&root, kernel, pool);
    net::Wire wire(&root, "wire", eq, 2.0e9, 1.0e9, 10'000);
    net::Nic nic(&root, "nic", 0, kernel, pool, wire);
    driver.attachNic(nic);
    net::Socket socket(&root, "sock", kernel, driver, pool,
                       net::connFlowKey(0));
    driver.bindSocket(socket, nic);
    net::RemotePeer peer(&root, "peer", eq, wire, net::connFlowKey(0),
                         net::PeerRole::Sink);
    peer.start();

    CloseAfterLogic logic(
        socket, kernel.addressSpace().alloc(mem::Region::UserData, 8192),
        256 * 1024);
    kernel.createTask("closer", &logic);
    kernel.start();
    eq.runUntil(400'000'000); // 200 ms

    EXPECT_EQ(logic.sent, 256u * 1024u);
    // Everything arrived before the FIN was honored.
    EXPECT_EQ(peer.bytesReceived(), 256u * 1024u);
    EXPECT_TRUE(peer.tcp().finReceived());
    // Peer acked the FIN: the SUT side reached FIN_WAIT2.
    EXPECT_EQ(socket.tcp().state(), net::TcpState::FinWait2);
}

TEST(NetStack, FourConnectionQuadCpuSystemWorks)
{
    SystemConfig cfg = smallConfig(workload::TtcpMode::Transmit, 4);
    cfg.platform.numCpus = 4;
    cfg.affinity = AffinityMode::Full;
    System sys(cfg);
    ASSERT_TRUE(sys.establishAll(4'000'000'000));
    EXPECT_EQ(sys.cpuForConn(0), 0);
    EXPECT_EQ(sys.cpuForConn(3), 3);
    sys.runFor(20'000'000);
    for (int i = 0; i < 4; ++i)
        EXPECT_GT(sys.peer(i).bytesReceived(), 0u);
}

} // namespace
