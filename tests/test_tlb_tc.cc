/**
 * @file
 * Unit tests for the TLB and trace cache models.
 */

#include <gtest/gtest.h>

#include "src/mem/tlb.hh"
#include "src/mem/trace_cache.hh"

using namespace na;
using namespace na::mem;

namespace {

TEST(Tlb, WalkThenHit)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, "tlb", 4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
    EXPECT_EQ(tlb.walks.value(), 2.0);
    EXPECT_EQ(tlb.hits.value(), 2.0);
}

TEST(Tlb, LruEvictionAtCapacity)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, "tlb", 2);
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000);        // refresh page 0
    tlb.access(0x2000);        // evicts page 1
    EXPECT_TRUE(tlb.resident(0x0000));
    EXPECT_FALSE(tlb.resident(0x1000));
    EXPECT_TRUE(tlb.resident(0x2000));
    EXPECT_EQ(tlb.size(), 2u);
}

TEST(Tlb, FlushAllEmpties)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, "tlb", 8);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.flushAll();
    EXPECT_EQ(tlb.size(), 0u);
    EXPECT_FALSE(tlb.resident(0x1000));
}

TEST(Tlb, ResidentDoesNotRefreshLru)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, "tlb", 2);
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.resident(0x0000); // must not refresh
    tlb.access(0x2000);   // evicts page 0 (still LRU)
    EXPECT_FALSE(tlb.resident(0x0000));
}

TEST(TraceCache, HitAfterBuild)
{
    stats::Group root(nullptr, "");
    TraceCache tc(&root, "tc", 1024);
    EXPECT_GT(tc.access(1, 256), 0u);
    EXPECT_EQ(tc.access(1, 256), 0u);
    EXPECT_TRUE(tc.resident(1));
    EXPECT_EQ(tc.usedBytes(), 256u);
}

TEST(TraceCache, MissCountsTraceLines)
{
    stats::Group root(nullptr, "");
    TraceCache tc(&root, "tc", 4096);
    EXPECT_EQ(tc.access(1, 256), 4u);  // 256/64
    EXPECT_EQ(tc.access(2, 100), 2u);  // ceil(100/64)
}

TEST(TraceCache, EvictsLruWhenFull)
{
    stats::Group root(nullptr, "");
    TraceCache tc(&root, "tc", 512);
    tc.access(1, 256);
    tc.access(2, 256);
    tc.access(1, 256); // refresh 1
    tc.access(3, 256); // evicts 2
    EXPECT_TRUE(tc.resident(1));
    EXPECT_FALSE(tc.resident(2));
    EXPECT_TRUE(tc.resident(3));
    EXPECT_LE(tc.usedBytes(), 512u);
}

TEST(TraceCache, OversizedFunctionStreams)
{
    stats::Group root(nullptr, "");
    TraceCache tc(&root, "tc", 256);
    EXPECT_EQ(tc.access(1, 1024), 16u);
    EXPECT_FALSE(tc.resident(1)); // never resident
    EXPECT_EQ(tc.access(1, 1024), 16u); // misses again
    EXPECT_EQ(tc.usedBytes(), 0u);
}

TEST(TraceCache, FlushAllEmpties)
{
    stats::Group root(nullptr, "");
    TraceCache tc(&root, "tc", 1024);
    tc.access(1, 512);
    tc.flushAll();
    EXPECT_FALSE(tc.resident(1));
    EXPECT_EQ(tc.usedBytes(), 0u);
}

} // namespace
