/**
 * @file
 * Consistency tests for the function registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/mem/addr_alloc.hh"
#include "src/prof/func_registry.hh"

using namespace na;
using namespace na::prof;

namespace {

TEST(FuncRegistry, EveryFunctionHasSaneProperties)
{
    for (std::size_t f = 0; f < numFuncs; ++f) {
        const FuncDesc &d = funcDesc(static_cast<FuncId>(f));
        EXPECT_EQ(d.id, static_cast<FuncId>(f));
        EXPECT_FALSE(d.name.empty());
        EXPECT_LT(static_cast<int>(d.bin),
                  static_cast<int>(Bin::NumBins));
        EXPECT_GT(d.codeBytes, 0u);
        EXPECT_GE(d.branchFrac, 0.0);
        EXPECT_LE(d.branchFrac, 0.5);
        EXPECT_GE(d.mispredictBase, 0.0);
        EXPECT_LE(d.mispredictBase, 0.1);
        EXPECT_GT(d.baseCpi, 0.3);
        EXPECT_LT(d.baseCpi, 5.0);
    }
}

TEST(FuncRegistry, NamesAreUnique)
{
    std::set<std::string_view> names;
    for (std::size_t f = 0; f < numFuncs; ++f)
        names.insert(funcDesc(static_cast<FuncId>(f)).name);
    EXPECT_EQ(names.size(), numFuncs);
}

TEST(FuncRegistry, LookupByName)
{
    const FuncDesc &d = funcDescByName("tcp_sendmsg");
    EXPECT_EQ(d.id, FuncId::TcpSendmsg);
    EXPECT_EQ(d.bin, Bin::Engine);
}

TEST(FuncRegistryDeath, UnknownNamePanics)
{
    EXPECT_DEATH(funcDescByName("not_a_symbol"), "unknown function");
}

TEST(FuncRegistry, NicIrqFuncsAreDriverBin)
{
    std::set<FuncId> ids;
    for (int i = 0; i < 8; ++i) {
        const FuncId id = nicIrqFunc(i);
        ids.insert(id);
        EXPECT_EQ(funcDesc(id).bin, Bin::Driver);
        EXPECT_NE(funcDesc(id).name.find("IRQ0x"),
                  std::string_view::npos);
    }
    EXPECT_EQ(ids.size(), 8u);
}

TEST(FuncRegistryDeath, NicIrqIndexOutOfRange)
{
    EXPECT_DEATH(nicIrqFunc(8), "out of range");
    EXPECT_DEATH(nicIrqFunc(-1), "out of range");
}

TEST(FuncRegistry, CodeAddressesArePageAlignedAndDisjoint)
{
    std::set<std::uint64_t> addrs;
    for (std::size_t f = 0; f < numFuncs; ++f) {
        const auto id = static_cast<FuncId>(f);
        const std::uint64_t a = funcCodeAddr(id);
        EXPECT_EQ(a % 4096, 0u);
        EXPECT_TRUE(addrs.insert(a).second) << "duplicate code addr";
        // Region matches the bin: user code in UserText.
        const auto region = mem::AddressAllocator::regionOf(a);
        if (funcDesc(id).bin == Bin::User)
            EXPECT_EQ(region, mem::Region::UserText);
        else
            EXPECT_EQ(region, mem::Region::KernelText);
    }
}

TEST(FuncRegistry, BinNamesMatchPaperRows)
{
    EXPECT_EQ(binName(Bin::Interface), "Interface");
    EXPECT_EQ(binName(Bin::BufMgmt), "Buf Mgmt");
    EXPECT_EQ(binName(Bin::Copies), "Copies");
    EXPECT_EQ(eventName(Event::MachineClears), "machine_clears");
    EXPECT_EQ(allBins.size(), numBins);
    EXPECT_EQ(allEvents.size(), numEvents);
}

TEST(FuncRegistry, EveryBinHasAtLeastOneFunction)
{
    std::array<int, numBins> counts{};
    for (std::size_t f = 0; f < numFuncs; ++f)
        ++counts[static_cast<std::size_t>(
            funcDesc(static_cast<FuncId>(f)).bin)];
    for (std::size_t b = 0; b < numBins; ++b)
        EXPECT_GT(counts[b], 0) << "bin " << b << " empty";
}

} // namespace
