/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/sim_object.hh"
#include "src/sim/trace.hh"

using namespace na::sim;

namespace {

class Recorder : public Event
{
  public:
    Recorder(std::vector<int> &log, int id, int prio = defaultPrio)
        : Event("recorder", prio), log(log), id(id)
    {
    }

    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    Recorder b(log, 2);
    Recorder c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.runUntil(1000);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder low(log, 1, Event::schedulerPrio);
    Recorder hi(log, 2, Event::interruptPrio);
    Recorder mid1(log, 3, Event::defaultPrio);
    Recorder mid2(log, 4, Event::defaultPrio);
    eq.schedule(&low, 50);
    eq.schedule(&mid1, 50);
    eq.schedule(&hi, 50);
    eq.schedule(&mid2, 50);
    eq.runUntil(50);
    EXPECT_EQ(log, (std::vector<int>{2, 3, 4, 1}));
}

TEST(EventQueue, AdvancesNowToEventTime)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 123);
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(eq.now(), 123u);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 100);
    EXPECT_TRUE(a.scheduled());
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.runUntil(200);
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.deschedule(&a); // never scheduled: no-op
    eq.schedule(&a, 10);
    eq.deschedule(&a);
    eq.deschedule(&a);
    eq.runUntil(20);
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    Recorder b(log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 150);
    eq.reschedule(&a, 200); // now after b
    eq.runUntil(300);
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(a.when(), maxTick);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue eq;
    int fires = 0;
    class Periodic : public Event
    {
      public:
        Periodic(EventQueue &eq, int &fires)
            : Event("periodic"), eq(eq), fires(fires)
        {
        }
        void
        process() override
        {
            if (++fires < 5)
                eq.schedule(this, eq.now() + 10);
        }

      private:
        EventQueue &eq;
        int &fires;
    } p(eq, fires);
    eq.schedule(&p, 10);
    eq.runUntil(1000);
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.processedCount(), 5u);
}

TEST(EventQueue, LambdaEventsFireAndAreOwned)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleLambda(10, "l1", [&count] { ++count; });
    eq.scheduleLambda(20, "l2", [&count] { count += 10; });
    eq.runUntil(100);
    EXPECT_EQ(count, 11);
}

TEST(EventQueue, LambdaCanScheduleMoreLambdas)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 4)
            eq.scheduleLambda(eq.now() + 5, "chain", chain);
    };
    eq.scheduleLambda(5, "chain", chain);
    eq.runUntil(1000);
    EXPECT_EQ(depth, 4);
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    Recorder b(log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 300);
    eq.runUntil(200);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 200u);
    eq.runUntil(300); // event exactly at the boundary fires
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    eq.deschedule(&b);
}

TEST(EventQueue, SchedulingAtCurrentTickWorks)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.runUntil(50);
    eq.schedule(&a, 50);
    eq.runUntil(50);
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(SimObject, ProvidesNameAndClock)
{
    EventQueue eq;
    class Widget : public SimObject
    {
      public:
        using SimObject::SimObject;
    } w("sys.widget", eq);
    EXPECT_EQ(w.name(), "sys.widget");
    EXPECT_EQ(&w.eventQueue(), &eq);
    eq.runUntil(500);
    EXPECT_EQ(w.now(), 500u);
}

TEST(EventQueueDeath, SchedulingTwicePanics)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 10);
    EXPECT_DEATH(eq.schedule(&a, 20), "scheduled twice");
    eq.deschedule(&a);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.runUntil(100);
    std::vector<int> log;
    Recorder a(log, 1);
    EXPECT_DEATH(eq.schedule(&a, 50), "in the past");
}

TEST(EventQueueDeath, DestroyingScheduledEventPanics)
{
    EventQueue eq;
    EXPECT_DEATH(
        {
            std::vector<int> log;
            Recorder a(log, 1);
            eq.schedule(&a, 10);
            // 'a' destroyed while scheduled.
        },
        "destroyed while scheduled");
}

TEST(EventQueue, DrainedStaleEntriesDoNotDisturbOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    for (int i = 0; i < 50; ++i) {
        eq.schedule(&a, 100 + static_cast<Tick>(i));
        eq.deschedule(&a);
    }
    Recorder b(log, 2);
    eq.schedule(&b, 120);
    eq.schedule(&a, 110);
    eq.runUntil(200);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, DescheduleStormDoesNotGrowHeapUnboundedly)
{
    EventQueue eq;
    std::vector<int> log;
    std::deque<Recorder> evs;
    for (int i = 0; i < 128; ++i)
        evs.emplace_back(log, i);

    Tick when = 1000;
    for (auto &ev : evs)
        eq.schedule(&ev, when += 10);

    // The Nic-moderation / Processor-tick pattern: every event is
    // repeatedly pulled forward. Lazy deletion leaves a stale entry per
    // deschedule; compaction must keep total heap slots bounded by a
    // small multiple of the live count rather than the churn count.
    for (int round = 0; round < 1000; ++round) {
        for (auto &ev : evs)
            eq.deschedule(&ev);
        for (auto &ev : evs)
            eq.schedule(&ev, when += 10);
    }
    EXPECT_EQ(eq.size(), evs.size());
    EXPECT_LE(eq.heapEntries(), 4 * evs.size());

    // All 128 still fire, in schedule order, exactly once.
    eq.runUntil(when + 1);
    EXPECT_EQ(log.size(), evs.size());
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(log[i], i);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, OrderAndProcessedCountSurviveCompaction)
{
    EventQueue eq;
    std::vector<int> log;
    std::deque<Recorder> evs;
    for (int i = 0; i < 200; ++i)
        evs.emplace_back(log, i);

    // Schedule everyone, then cancel the odd ids with enough churn on
    // the evens to force at least one in-place compaction while the
    // odd events' stale entries are still in the heap.
    for (int i = 0; i < 200; ++i)
        eq.schedule(&evs[i], 10'000 + static_cast<Tick>(i));
    for (int i = 1; i < 200; i += 2)
        eq.deschedule(&evs[i]);
    for (int round = 0; round < 50; ++round)
        for (int i = 0; i < 200; i += 2)
            eq.reschedule(&evs[i], 10'000 + static_cast<Tick>(i));
    EXPECT_EQ(eq.size(), 100u);

    eq.runUntil(20'000);
    ASSERT_EQ(log.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(log[i], 2 * i); // ascending evens, no odd fired
    EXPECT_EQ(eq.processedCount(), 100u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.heapEntries(), 0u);
}

TEST(EventQueue, LambdaEventsAreRecycledThroughThePool)
{
    EventQueue eq;
    int fired = 0;
    Event *first = eq.scheduleLambda(10, "a", [&fired] { ++fired; });
    ASSERT_TRUE(eq.runOne());
    // The fired event returns to the free list and the next
    // scheduleLambda reuses it instead of allocating.
    Event *second = eq.scheduleLambda(20, "b", [&fired] { ++fired; });
    EXPECT_EQ(first, second);
    ASSERT_TRUE(eq.runOne());
    EXPECT_EQ(fired, 2);

    // Pool recycling must not break same-tick FIFO ordering among
    // equal-priority lambdas.
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleLambda(100, "seq", [&order, i] { order.push_back(i); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Trace, FlagsGateEmission)
{
    setTraceFlagsFromString(""); // all off
    EXPECT_FALSE(traceEnabled(TraceFlag::Tcp));
    const auto before = traceLineCount();
    EventQueue eq;
    NA_TRACE_LOG(Tcp, eq, "must not appear %d", 1);
    EXPECT_EQ(traceLineCount(), before);

    setTraceFlag(TraceFlag::Tcp, true);
    EXPECT_TRUE(traceEnabled(TraceFlag::Tcp));
    EXPECT_FALSE(traceEnabled(TraceFlag::Nic));
    NA_TRACE_LOG(Tcp, eq, "appears %d", 2);
    EXPECT_EQ(traceLineCount(), before + 1);
    setTraceFlag(TraceFlag::Tcp, false);
}

TEST(Trace, SpecParsing)
{
    setTraceFlagsFromString("tcp,irq");
    EXPECT_TRUE(traceEnabled(TraceFlag::Tcp));
    EXPECT_TRUE(traceEnabled(TraceFlag::Irq));
    EXPECT_FALSE(traceEnabled(TraceFlag::Cache));
    setTraceFlagsFromString("all");
    EXPECT_TRUE(traceEnabled(TraceFlag::Cache));
    setTraceFlagsFromString("");
    EXPECT_FALSE(traceEnabled(TraceFlag::Cache));
}

} // namespace
