/**
 * @file
 * Processor dispatch mechanics: softirq/task fairness (the ksoftirqd
 * rule), interrupt-before-task priority, forward progress, and the
 * estimated-now clock.
 */

#include <gtest/gtest.h>

#include "src/os/kernel.hh"
#include "src/sim/logging.hh"

using namespace na;
using namespace na::os;

namespace {

class ProcessorTest : public ::testing::Test
{
  protected:
    ProcessorTest() : kernel(&root, eq, config())
    {
        kernel.start();
    }

    static cpu::PlatformConfig
    config()
    {
        cpu::PlatformConfig c;
        c.numCpus = 1; // single CPU isolates dispatch ordering
        return c;
    }

    stats::Group root{nullptr, ""};
    sim::EventQueue eq;
    Kernel kernel;
};

/** Task that logs each step's sequence number into a shared journal. */
class JournalLogic : public TaskLogic
{
  public:
    JournalLogic(std::vector<char> &journal, char tag)
        : journal(journal), tag(tag)
    {
    }

    StepStatus
    step(ExecContext &ctx) override
    {
        journal.push_back(tag);
        ctx.charge(prof::FuncId::UserApp, 2000, {});
        return StepStatus::Continue;
    }

  private:
    std::vector<char> &journal;
    char tag;
};

TEST_F(ProcessorTest, SoftirqAlternatesWithTaskSteps)
{
    std::vector<char> journal;
    JournalLogic task(journal, 'T');
    kernel.createTask("t", &task);

    // A softirq handler that re-raises itself forever: without the
    // ksoftirqd fairness rule it would starve the task.
    kernel.processor(0).setSoftirqHandler(
        Softirq::NetRx, [this, &journal](ExecContext &ctx) {
            journal.push_back('S');
            ctx.charge(prof::FuncId::NetRxAction, 2000, {});
            ctx.proc.raiseSoftirq(Softirq::NetRx);
        });
    kernel.processor(0).raiseSoftirq(Softirq::NetRx);
    eq.runUntil(10'000'000);

    // Both made progress, roughly alternating.
    const auto t_count = std::count(journal.begin(), journal.end(), 'T');
    const auto s_count = std::count(journal.begin(), journal.end(), 'S');
    ASSERT_GT(t_count, 100);
    ASSERT_GT(s_count, 100);
    EXPECT_NEAR(static_cast<double>(t_count),
                static_cast<double>(s_count),
                static_cast<double>(s_count) * 0.2);
    // No run of more than 2 of the same kind (alternation).
    int run = 1;
    for (std::size_t i = 1; i < journal.size(); ++i) {
        run = journal[i] == journal[i - 1] ? run + 1 : 1;
        ASSERT_LE(run, 2) << "starvation at " << i;
    }
}

TEST_F(ProcessorTest, InterruptsPreemptTaskWork)
{
    std::vector<char> journal;
    JournalLogic task(journal, 'T');
    kernel.createTask("t", &task);

    const int vec = kernel.irqController().registerVector(
        "dev",
        [&journal](ExecContext &ctx) {
            journal.push_back('I');
            ctx.charge(prof::FuncId::IrqNic0, 100, {}, 1.0, 1);
        },
        prof::FuncId::IrqNic0);

    eq.runUntil(1'000'000);
    kernel.irqController().raise(vec);
    const std::size_t mark = journal.size();
    eq.runUntil(eq.now() + 1'000'000);
    // The ISR ran within a couple of dispatches of being raised.
    auto it = std::find(journal.begin() +
                            static_cast<std::ptrdiff_t>(mark),
                        journal.end(), 'I');
    ASSERT_NE(it, journal.end());
    EXPECT_LE(it - (journal.begin() + static_cast<std::ptrdiff_t>(mark)),
              2);
}

TEST_F(ProcessorTest, EstimatedNowAdvancesWithinDispatch)
{
    struct Probe : TaskLogic
    {
        sim::Tick before = 0;
        sim::Tick after = 0;
        StepStatus
        step(ExecContext &ctx) override
        {
            before = ctx.estimatedNow();
            ctx.charge(prof::FuncId::UserApp, 10000, {});
            after = ctx.estimatedNow();
            return StepStatus::Exited;
        }
    } probe;
    kernel.createTask("probe", &probe);
    eq.runUntil(5'000'000);
    EXPECT_GT(probe.after, probe.before);
    EXPECT_GE(probe.after - probe.before, 10000u);
}

TEST_F(ProcessorTest, IdleCpuWakesOnKick)
{
    // Nothing to do: the processor parks. A lambda kick at t wakes it.
    eq.runUntil(5'000'000);
    EXPECT_TRUE(kernel.processor(0).isIdle());
    bool ran = false;
    kernel.processor(0).setSoftirqHandler(
        Softirq::NetTx, [&ran](ExecContext &) { ran = true; });
    eq.scheduleLambda(eq.now() + 1000, "kick", [this] {
        kernel.processor(0).raiseSoftirq(Softirq::NetTx);
    });
    eq.runUntil(eq.now() + 100'000);
    EXPECT_TRUE(ran);
}

TEST_F(ProcessorTest, ExitedTasksLeaveTheSystem)
{
    struct OneShot : TaskLogic
    {
        int steps = 0;
        StepStatus
        step(ExecContext &ctx) override
        {
            ++steps;
            ctx.charge(prof::FuncId::UserApp, 100, {});
            return StepStatus::Exited;
        }
    } one;
    Task *t = kernel.createTask("one", &one);
    eq.runUntil(5'000'000);
    EXPECT_EQ(one.steps, 1);
    EXPECT_EQ(t->state, TaskState::Exited);
    EXPECT_TRUE(kernel.processor(0).isIdle());
}

} // namespace
