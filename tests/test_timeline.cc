/**
 * @file
 * Observability layer: TimeSeries stats, interval recording, the
 * Chrome trace-event tracer, and the core::json parser behind the
 * results reader and the trace self-checks.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/json.hh"
#include "src/prof/accounting.hh"
#include "src/prof/interval.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/timeline.hh"
#include "src/sim/trace.hh"
#include "src/stats/stats.hh"

using namespace na;

namespace {

// ---------------------------------------------------------------------
// stats::TimeSeries
// ---------------------------------------------------------------------

TEST(TimeSeries, RecordsWindowsAndTotals)
{
    stats::Group root(nullptr, "");
    stats::TimeSeries ts(&root, "rate", "test series");
    EXPECT_TRUE(ts.windows().empty());
    EXPECT_EQ(ts.total(), 0.0);

    ts.record(0, 100, 5.0);
    ts.record(100, 200, 7.5);
    ASSERT_EQ(ts.windows().size(), 2u);
    EXPECT_EQ(ts.windows()[1].start, 100u);
    EXPECT_EQ(ts.windows()[1].end, 200u);
    EXPECT_DOUBLE_EQ(ts.windows()[1].value, 7.5);
    EXPECT_DOUBLE_EQ(ts.total(), 12.5);

    ts.reset();
    EXPECT_TRUE(ts.windows().empty());
}

TEST(TimeSeries, DumpEmitsPerWindowLines)
{
    stats::Group root(nullptr, "");
    stats::TimeSeries ts(&root, "rate", "test series");
    ts.record(0, 10, 1.0);
    ts.record(10, 20, 2.0);
    std::ostringstream os;
    root.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("rate::w0"), std::string::npos);
    EXPECT_NE(out.find("rate::w1"), std::string::npos);
    EXPECT_NE(out.find("rate::total"), std::string::npos);
}

// ---------------------------------------------------------------------
// prof::IntervalRecorder
// ---------------------------------------------------------------------

TEST(IntervalRecorder, WindowDeltasTelescopeToAggregates)
{
    sim::EventQueue eq;
    prof::BinAccounting acct(2);
    std::uint64_t frames = 0;
    prof::IntervalRecorder rec(
        eq, acct, /*interval_ticks=*/100, /*num_queues=*/1,
        [&frames](int) { return frames; });

    rec.start();
    acct.add(0, prof::FuncId::TcpAck, prof::Event::Cycles, 5);
    eq.runUntil(150); // snapshot at 100 closes window 0

    acct.add(1, prof::FuncId::CopyToUser, prof::Event::Cycles, 7);
    frames += 3;
    eq.runUntil(250); // snapshot at 200 closes window 1

    acct.add(0, prof::FuncId::TcpAck, prof::Event::Cycles, 2);
    rec.finalize(); // closes the partial window [200, 250)

    const prof::IntervalSeries &s = rec.series();
    EXPECT_EQ(s.intervalTicks, 100u);
    EXPECT_EQ(s.numCpus, 2);
    EXPECT_EQ(s.numQueues, 1);
    ASSERT_EQ(s.windows.size(), 3u);

    EXPECT_EQ(s.windows[0].start, 0u);
    EXPECT_EQ(s.windows[0].end, 100u);
    EXPECT_EQ(s.windowEvent(0, prof::Event::Cycles), 5u);
    EXPECT_EQ(s.windowEvent(1, prof::Event::Cycles), 7u);
    EXPECT_EQ(s.windows[1].rxFramesPerQueue[0], 3u);
    EXPECT_EQ(s.windows[2].start, 200u);
    EXPECT_EQ(s.windows[2].end, 250u);
    EXPECT_EQ(s.windowEvent(2, prof::Event::Cycles), 2u);

    // The telescoping invariant, and per-cell attribution.
    EXPECT_EQ(s.totalEvent(prof::Event::Cycles),
              acct.total(prof::Event::Cycles));
    EXPECT_EQ(s.delta(1, 1, prof::Bin::User, prof::Event::Cycles),
              acct.byBinCpu(1, prof::Bin::User, prof::Event::Cycles));
}

TEST(IntervalRecorder, StartResetsPriorWindows)
{
    sim::EventQueue eq;
    prof::BinAccounting acct(1);
    prof::IntervalRecorder rec(eq, acct, 100, 1,
                               [](int) { return 0ull; });
    rec.start();
    acct.add(0, prof::FuncId::TcpAck, prof::Event::Cycles, 1);
    eq.runUntil(150);
    rec.finalize();
    ASSERT_EQ(rec.series().windows.size(), 2u);

    // Re-arming drops the old windows and rebases on the *current*
    // counter values: the old counts must not leak into new deltas.
    rec.start();
    eq.runUntil(eq.now() + 100);
    rec.finalize();
    const prof::IntervalSeries &s = rec.series();
    EXPECT_EQ(s.totalEvent(prof::Event::Cycles), 0u);
}

// ---------------------------------------------------------------------
// sim::TimelineTracer
// ---------------------------------------------------------------------

TEST(TimelineTracer, WritesValidChromeTraceWithMonotonicTimestamps)
{
    sim::TimelineTracer tl;
    // Buffered deliberately out of time order: the writer must sort.
    tl.complete(sim::TraceFlag::Irq, 0, 2000, 500, "irq:nic0");
    tl.instant(sim::TraceFlag::Sched, 0, 1000, "switch:ttcp0");
    tl.asyncBegin(sim::TraceFlag::Tcp, (1ull << 32) | 7, 1500,
                  "pkt:conn1");
    tl.asyncEnd(sim::TraceFlag::Tcp, (1ull << 32) | 7, 2500,
                "pkt:conn1");
    EXPECT_EQ(tl.eventCount(), 4u);

    std::ostringstream os;
    tl.writeJson(os, 2.0e9); // 2 GHz: 2000 ticks = 1 us

    const core::json::Value root = core::json::parse(os.str());
    ASSERT_TRUE(root.isObject());
    const core::json::Value &evs = root.field("traceEvents");
    ASSERT_TRUE(evs.isArray());

    double last_ts_tid0 = -1.0;
    std::size_t seen = 0;
    for (const core::json::Value &e : evs.items) {
        if (e.str("ph") == "M")
            continue;
        ++seen;
        EXPECT_EQ(static_cast<int>(e.num("pid")), 0);
        if (static_cast<int>(e.num("tid")) == 0) {
            EXPECT_GE(e.num("ts"), last_ts_tid0);
            last_ts_tid0 = e.num("ts");
        }
    }
    EXPECT_EQ(seen, 4u);

    // Spot-check the us conversion and the async/flow-row mapping.
    EXPECT_NE(os.str().find("\"ts\":0.500000"), std::string::npos);
    EXPECT_NE(os.str().find("\"tid\":1001"), std::string::npos);
    EXPECT_NE(os.str().find("flow 1"), std::string::npos);
}

TEST(TimelineTracer, CategoryMaskFiltersAndClearDrops)
{
    sim::TimelineTracer tl(
        static_cast<std::uint32_t>(sim::TraceFlag::Irq));
    EXPECT_TRUE(tl.wants(sim::TraceFlag::Irq));
    EXPECT_FALSE(tl.wants(sim::TraceFlag::Sched));

    tl.instant(sim::TraceFlag::Sched, 0, 10, "dropped");
    tl.instant(sim::TraceFlag::Irq, 0, 20, "kept");
    EXPECT_EQ(tl.eventCount(), 1u);

    tl.clear();
    EXPECT_EQ(tl.eventCount(), 0u);
}

TEST(TraceFlags, ParseSpecBuildsMasks)
{
    EXPECT_EQ(sim::parseTraceFlags(nullptr), 0u);
    EXPECT_EQ(sim::parseTraceFlags(""), 0u);
    EXPECT_EQ(sim::parseTraceFlags("all"),
              static_cast<std::uint32_t>(sim::TraceFlag::All));
    EXPECT_EQ(sim::parseTraceFlags("irq,sched"),
              static_cast<std::uint32_t>(sim::TraceFlag::Irq) |
                  static_cast<std::uint32_t>(sim::TraceFlag::Sched));
}

// ---------------------------------------------------------------------
// core::json
// ---------------------------------------------------------------------

TEST(Json, ParsesNestedDocument)
{
    const core::json::Value v = core::json::parse(
        "{\"a\": [1, 2.5, -3], \"s\": \"x\\ny\", \"o\": {\"t\": true, "
        "\"n\": null}}");
    ASSERT_TRUE(v.isObject());
    const core::json::Value &a = v.field("a");
    ASSERT_TRUE(a.isArray());
    ASSERT_EQ(a.items.size(), 3u);
    EXPECT_DOUBLE_EQ(a.items[1].number, 2.5);
    EXPECT_DOUBLE_EQ(a.items[2].number, -3.0);
    EXPECT_EQ(v.str("s"), "x\ny");
    EXPECT_TRUE(v.field("o").field("t").boolean);
}

TEST(Json, U64RoundTripsAboveDoubleMantissa)
{
    // 2^53 + 1 is not representable as a double; the u64 accessor must
    // re-parse the raw token instead of casting the double.
    const core::json::Value v =
        core::json::parse("{\"big\": 9007199254740993}");
    EXPECT_EQ(v.u64("big"), 9007199254740993ull);
}

TEST(Json, RejectsMalformedDocuments)
{
    EXPECT_THROW(core::json::parse(""), std::runtime_error);
    EXPECT_THROW(core::json::parse("{"), std::runtime_error);
    EXPECT_THROW(core::json::parse("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(core::json::parse("[1, 2"), std::runtime_error);
    EXPECT_THROW(core::json::parse("{} trailing"), std::runtime_error);
    // Accessor type errors are runtime_errors too, not UB.
    const core::json::Value v = core::json::parse("{\"a\": 1}");
    EXPECT_THROW(v.str("a"), std::runtime_error);
    EXPECT_THROW(v.field("missing"), std::runtime_error);
}

} // namespace
