/**
 * @file
 * Canonical point keys: determinism, sensitivity to every covered
 * axis, hex round trip, and the collision-checked registry.
 */

#include <gtest/gtest.h>

#include "src/core/point_key.hh"
#include "src/core/sweep.hh"

using namespace na;

namespace {

core::SystemConfig
baseConfig()
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    return cfg;
}

core::RunSchedule
baseSchedule()
{
    core::RunSchedule s;
    s.warmup = 2'000'000;
    s.measure = 10'000'000;
    return s;
}

TEST(PointKey, DeterministicAcrossCalls)
{
    const core::SystemConfig cfg = baseConfig();
    const core::RunSchedule sched = baseSchedule();
    EXPECT_EQ(core::canonicalPointText(cfg, sched),
              core::canonicalPointText(cfg, sched));
    EXPECT_EQ(core::pointKeyOf(cfg, sched),
              core::pointKeyOf(cfg, sched));
    EXPECT_NE(core::pointKeyOf(cfg, sched), 0u);
}

TEST(PointKey, SensitiveToEveryCoveredAxis)
{
    const core::SystemConfig cfg = baseConfig();
    const core::RunSchedule sched = baseSchedule();
    const std::uint64_t base_key = core::pointKeyOf(cfg, sched);

    {
        core::SystemConfig c = cfg;
        c.platform.seed += 1;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key) << "seed";
    }
    {
        core::SystemConfig c = cfg;
        c.ttcp().msgSize = 8192;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key) << "msg size";
    }
    {
        core::SystemConfig c = cfg;
        c.ttcp().mode = workload::TtcpMode::Receive;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key) << "mode";
    }
    {
        core::SystemConfig c = cfg;
        c.affinity = core::AffinityMode::Full;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key) << "affinity";
    }
    {
        core::SystemConfig c = cfg;
        c.numConnections = 4;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key)
            << "connections";
    }
    {
        core::SystemConfig c = cfg;
        c.wireLossProb = 0.01;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key) << "wire loss";
    }
    {
        core::SystemConfig c = cfg;
        c.lanes = 2;
        EXPECT_NE(core::pointKeyOf(c, sched), base_key) << "lanes";
    }
    {
        core::RunSchedule s = sched;
        s.measure *= 2;
        EXPECT_NE(core::pointKeyOf(cfg, s), base_key)
            << "schedule measure";
    }
    {
        core::RunSchedule s = sched;
        s.maxWindows += 1;
        EXPECT_NE(core::pointKeyOf(cfg, s), base_key)
            << "schedule windows";
    }
}

TEST(PointKey, HexFormatRoundTrips)
{
    for (std::uint64_t key :
         {std::uint64_t{1}, std::uint64_t{0xdeadbeefcafebabeULL},
          std::uint64_t{0xffffffffffffffffULL},
          core::pointKeyOf(baseConfig(), baseSchedule())}) {
        const std::string hex = core::formatPointKey(key);
        EXPECT_EQ(hex.size(), 16u);
        EXPECT_EQ(core::parsePointKey(hex), key);
    }
}

TEST(PointKey, ParseRejectsMalformedHex)
{
    for (const char *bad :
         {"", "1234", "123456789abcdef", "123456789abcdef01",
          "123456789abcdefg", "0x1234567890abcde"}) {
        EXPECT_THROW((void)core::parsePointKey(bad),
                     std::runtime_error)
            << "'" << bad << "'";
    }
}

TEST(PointKey, HashNeverReturnsZero)
{
    // 0 is reserved as "no key" (converted records); the hash remaps
    // it rather than ever emitting it.
    EXPECT_NE(core::hashCanonicalText(""), 0u);
    EXPECT_NE(core::hashCanonicalText("x"), 0u);
}

TEST(PointKeyRegistry, FlagsIdenticalPointsAsDuplicates)
{
    core::PointKeyRegistry reg;
    const auto e0 = reg.add(7, "same text", 0);
    EXPECT_FALSE(e0.duplicate);
    EXPECT_EQ(e0.firstIndex, 0u);

    const auto e1 = reg.add(7, "same text", 3);
    EXPECT_TRUE(e1.duplicate);
    EXPECT_EQ(e1.firstIndex, 0u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(PointKeyRegistry, ThrowsOnRealHashCollision)
{
    core::PointKeyRegistry reg;
    reg.add(7, "text A", 0);
    EXPECT_THROW(reg.add(7, "text B", 1), std::runtime_error);
}

TEST(PointKey, SweepPointsGetDistinctKeys)
{
    core::SystemConfig base = baseConfig();
    const std::vector<core::CampaignPoint> points =
        core::SweepBuilder()
            .base(base)
            .schedule(baseSchedule())
            .sizes({1024u, 4096u})
            .affinities({core::AffinityMode::None,
                         core::AffinityMode::Full})
            .build();

    std::vector<std::uint64_t> keys;
    for (const core::CampaignPoint &p : points)
        keys.push_back(core::pointKeyOf(p.config, p.schedule));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
    }
}

} // namespace
