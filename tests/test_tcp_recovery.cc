/**
 * @file
 * TCP loss recovery under injected faults: RTO exponential backoff on
 * data segments, fast retransmit on three duplicate ACKs, restraint
 * under mild reordering, and seeded end-to-end determinism of the
 * recovery counters when the fault injector supplies the loss.
 * Complements test_tcp_rtt.cc, which covers the RTT estimator (Karn,
 * smoothing, SYN-level backoff) at the same unit level.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/system.hh"
#include "src/net/tcp_connection.hh"

using namespace na;
using namespace na::net;

namespace {

/** Establish a pair by direct segment exchange at a given tick. */
void
establish(TcpConnection &a, TcpConnection &b, sim::Tick now)
{
    a.openActive();
    b.openPassive();
    std::vector<Segment> syn = a.pullSegments(now);
    std::vector<Segment> synack;
    b.onSegment(syn.at(0), now, synack);
    std::vector<Segment> ack;
    a.onSegment(synack.at(0), now, ack);
    std::vector<Segment> none;
    b.onSegment(ack.at(0), now, none);
    ASSERT_EQ(a.state(), TcpState::Established);
}

/** Deliver @p seg to @p b, collecting any immediate replies. */
std::vector<Segment>
deliver(TcpConnection &b, const Segment &seg, sim::Tick now)
{
    std::vector<Segment> replies;
    b.onSegment(seg, now, replies);
    b.consume(b.readableBytes()); // keep the window open
    return replies;
}

TEST(TcpRecovery, RtoBackoffDoublesOnSustainedDataLoss)
{
    TcpConfig cfg;
    cfg.rtoTicks = 10'000;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);

    // One data segment, black-holed along with every retransmission.
    a.appendSendData(1448);
    ASSERT_EQ(a.pullSegments(100).size(), 1u);
    const sim::Tick d0 = a.rtoDeadline();
    a.onRtoTimer(d0);
    ASSERT_FALSE(a.pullSegments(d0).empty());
    const sim::Tick d1 = a.rtoDeadline();
    a.onRtoTimer(d1);
    ASSERT_FALSE(a.pullSegments(d1).empty());
    const sim::Tick d2 = a.rtoDeadline();
    a.onRtoTimer(d2);
    ASSERT_FALSE(a.pullSegments(d2).empty());
    const sim::Tick d3 = a.rtoDeadline();

    EXPECT_EQ(a.retransmitCount(), 3u);
    // Exponential backoff: each silent interval doubles.
    EXPECT_NEAR(static_cast<double>(d2 - d1),
                2.0 * static_cast<double>(d1 - d0), 2.0);
    EXPECT_NEAR(static_cast<double>(d3 - d2),
                2.0 * static_cast<double>(d2 - d1), 2.0);
}

TEST(TcpRecovery, BackoffResetsOnceNewDataIsAcked)
{
    TcpConfig cfg;
    cfg.rtoTicks = 10'000;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);

    a.appendSendData(1448);
    a.pullSegments(100);
    a.onRtoTimer(a.rtoDeadline());
    std::vector<Segment> rtx = a.pullSegments(a.rtoDeadline());
    ASSERT_FALSE(rtx.empty());

    // The retransmission finally lands; its cumulative ACK clears the
    // backoff shift.
    const sim::Tick t = 1'000'000;
    std::vector<Segment> replies = deliver(b, rtx[0], t);
    if (replies.empty())
        b.onDelackTimer(t, replies);
    ASSERT_FALSE(replies.empty());
    std::vector<Segment> none;
    a.onSegment(replies.back(), t, none);
    EXPECT_EQ(a.ackedBytes(), 1448u);

    // The next transmission is timed with the plain RTO again, not the
    // doubled one.
    a.appendSendData(1448);
    ASSERT_FALSE(a.pullSegments(t).empty());
    EXPECT_EQ(a.rtoDeadline(), t + a.effectiveRto());
}

TEST(TcpRecovery, FastRetransmitOnThreeDupAcks)
{
    TcpConfig cfg;
    cfg.rtoTicks = 100'000'000; // keep the RTO timer out of the play
    cfg.initialCwndSegs = 8;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);

    a.appendSendData(5 * 1448);
    std::vector<Segment> segs = a.pullSegments(1'000);
    ASSERT_EQ(segs.size(), 5u);

    // segs[0] lands and its ACK reaches the sender, so sndUna points
    // at segs[1] — later ACKs for that seq are true duplicates.
    std::vector<Segment> first = deliver(b, segs[0], 2'000);
    if (first.empty())
        b.onDelackTimer(2'000, first);
    ASSERT_FALSE(first.empty());
    std::vector<Segment> sink;
    a.onSegment(first.back(), 2'050, sink);

    // segs[1] is lost; every later arrival is out of order and must
    // draw an immediate duplicate ACK for segs[1].seq.
    std::vector<Segment> dups;
    for (std::size_t k = 2; k < 5; ++k) {
        std::vector<Segment> replies =
            deliver(b, segs[k], 2'000 + 100 * k);
        ASSERT_FALSE(replies.empty()) << "no immediate dup ACK";
        EXPECT_EQ(replies.back().ack, segs[1].seq);
        dups.push_back(replies.back());
    }

    // First two duplicates arm nothing...
    std::vector<Segment> none;
    a.onSegment(dups[0], 3'000, none);
    a.onSegment(dups[1], 3'100, none);
    EXPECT_EQ(a.retransmitCount(), 0u);
    // ...the third triggers fast retransmit of the hole, long before
    // the RTO deadline.
    a.onSegment(dups[2], 3'200, none);
    EXPECT_EQ(a.dupAckCount(), 3u);
    std::vector<Segment> rtx = a.pullSegments(3'300);
    ASSERT_FALSE(rtx.empty());
    EXPECT_EQ(rtx[0].seq, segs[1].seq);
    EXPECT_EQ(a.retransmitCount(), 1u);

    // Recovery completes: the filled hole is acked cumulatively.
    std::vector<Segment> replies = deliver(b, rtx[0], 4'000);
    if (replies.empty())
        b.onDelackTimer(4'000, replies);
    ASSERT_FALSE(replies.empty());
    a.onSegment(replies.back(), 4'000, none);
    EXPECT_EQ(a.ackedBytes(), 5u * 1448u);
}

TEST(TcpRecovery, MildReorderingDrawsNoSpuriousRetransmit)
{
    TcpConfig cfg;
    cfg.rtoTicks = 100'000'000;
    cfg.initialCwndSegs = 8;
    TcpConnection a(cfg);
    TcpConnection b(cfg);
    establish(a, b, 0);

    a.appendSendData(4 * 1448);
    std::vector<Segment> segs = a.pullSegments(1'000);
    ASSERT_EQ(segs.size(), 4u);

    // segs[1] is merely late: two dup ACKs arrive, then the straggler
    // fills the hole. Two is below the fast-retransmit threshold, so
    // the sender must hold its fire.
    std::vector<Segment> none;
    std::vector<Segment> first = deliver(b, segs[0], 2'000);
    if (first.empty())
        b.onDelackTimer(2'000, first);
    ASSERT_FALSE(first.empty());
    a.onSegment(first.back(), 2'050, none);
    for (std::size_t k = 2; k < 4; ++k) {
        std::vector<Segment> replies =
            deliver(b, segs[k], 2'000 + 100 * k);
        ASSERT_FALSE(replies.empty());
        a.onSegment(replies.back(), 2'500 + 100 * k, none);
    }
    EXPECT_EQ(a.dupAckCount(), 2u);
    std::vector<Segment> replies = deliver(b, segs[1], 3'000);
    if (replies.empty())
        b.onDelackTimer(3'000, replies);
    ASSERT_FALSE(replies.empty());
    a.onSegment(replies.back(), 3'100, none);
    EXPECT_EQ(a.retransmitCount(), 0u);
    EXPECT_EQ(a.ackedBytes(), 4u * 1448u);
}

TEST(TcpRecovery, FaultDrivenRecoveryCountersAreSeededDeterministic)
{
    core::SystemConfig cfg;
    cfg.numConnections = 2;
    cfg.ttcp().msgSize = 4096;
    cfg.faults.tag = "recovery";
    cfg.faults.toSut.lossProb = 0.005;
    cfg.faults.toPeer.lossProb = 0.005;
    cfg.faults.toPeer.dupProb = 0.005;
    cfg.faults.toSut.reorderProb = 0.005;
    core::RunSchedule sched;
    sched.warmup = 2'000'000;   // 1 ms
    sched.measure = 10'000'000; // 5 ms

    auto recoveryTotals = [&cfg, &sched](std::uint64_t &rtx,
                                         std::uint64_t &dups) {
        core::System sys(cfg);
        const core::RunResult r = core::Experiment::measure(sys, sched);
        EXPECT_GT(r.payloadBytes, 0u);
        rtx = dups = 0;
        for (int i = 0; i < sys.numConnections(); ++i) {
            rtx += sys.socket(i).tcp().retransmitCount();
            dups += sys.socket(i).tcp().dupAckCount();
        }
    };

    std::uint64_t rtx1 = 0, dups1 = 0, rtx2 = 0, dups2 = 0;
    recoveryTotals(rtx1, dups1);
    recoveryTotals(rtx2, dups2);
    // The injected loss must actually exercise the recovery machinery,
    // and identically so under an identical seed.
    EXPECT_GT(rtx1, 0u);
    EXPECT_EQ(rtx1, rtx2);
    EXPECT_EQ(dups1, dups2);
}

} // namespace
