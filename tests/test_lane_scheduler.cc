/**
 * @file
 * Lane scheduler coverage: the SPSC channel primitive, the windowed
 * conservative-lookahead loop (fast-forward, barriers, horizon
 * enforcement), and the headline contract — multi-lane System runs are
 * deterministic and result-identical to single-lane across steering
 * policy x fault plan x workload, in both serial and threaded modes.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/experiment.hh"
#include "src/core/system.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/fault_plan.hh"
#include "src/sim/lane_scheduler.hh"
#include "src/sim/spsc.hh"
#include "src/workload/spec.hh"

using namespace na;

namespace {

// ---------------------------------------------------------------- SPSC

TEST(SpscRing, PushPopRoundTrip)
{
    sim::SpscRing<int> ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    int v = 0;
    EXPECT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(ring.tryPop(v));
}

TEST(SpscRing, FullRingRefusesAndRecovers)
{
    sim::SpscRing<int> ring(4); // rounded to capacity 4
    ASSERT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    int v = -1;
    EXPECT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ring.tryPush(4)); // slot freed, FIFO preserved
    for (int expect = 1; expect <= 4; ++expect) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, expect);
    }
}

TEST(SpscRing, WrapsAroundManyTimes)
{
    sim::SpscRing<std::uint64_t> ring(8);
    std::uint64_t out = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        ASSERT_TRUE(ring.tryPop(out));
        ASSERT_EQ(out, i);
    }
}

// ------------------------------------------------- scheduler mechanics

TEST(EventQueueNextTick, ReportsEarliestLiveEvent)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), sim::maxTick);
    sim::Event *a = eq.scheduleLambda(500, "a", [] {});
    eq.scheduleLambda(900, "b", [] {});
    EXPECT_EQ(eq.nextEventTick(), 500u);
    eq.deschedule(a);
    // The stale top entry must be skipped, not reported.
    EXPECT_EQ(eq.nextEventTick(), 900u);
}

class LaneSchedulerTest : public ::testing::TestWithParam<bool>
{
  protected:
    sim::LaneScheduler::Config
    config(int lanes, sim::Tick lookahead) const
    {
        sim::LaneScheduler::Config c;
        c.numLanes = lanes;
        c.lookahead = lookahead;
        c.useThreads = GetParam();
        return c;
    }
};

TEST_P(LaneSchedulerTest, CrossEventDeliversAfterHorizon)
{
    sim::EventQueue eq0;
    sim::LaneScheduler sched(eq0, config(2, 100));

    std::vector<std::pair<std::string, sim::Tick>> log;
    sim::LambdaEvent cross("cross", [&] {
        log.emplace_back("cross", sched.lane(0).now());
    });
    sched.lane(1).scheduleLambda(50, "send", [&] {
        // Window covering tick 50 ends at 150; 151 clears the horizon.
        sched.scheduleCross(1, 0, &cross, 151);
        log.emplace_back("send", sched.lane(1).now());
    });

    sched.run(1000);

    EXPECT_EQ(sched.lane(0).now(), 1000u);
    EXPECT_EQ(sched.lane(1).now(), 1000u);
    EXPECT_EQ(sched.crossEvents(), 1u);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].first, "send");
    EXPECT_EQ(log[0].second, 50u);
    EXPECT_EQ(log[1].first, "cross");
    EXPECT_EQ(log[1].second, 151u);
}

TEST_P(LaneSchedulerTest, HorizonViolationThrows)
{
    sim::EventQueue eq0;
    sim::LaneScheduler sched(eq0, config(2, 100));

    sim::LambdaEvent cross("early-cross", [] {});
    sched.lane(1).scheduleLambda(50, "send", [&] {
        // Window end is 150; tick 120 is inside it — a causality
        // violation the conservative contract must reject.
        sched.scheduleCross(1, 0, &cross, 120);
    });

    EXPECT_THROW(sched.run(1000), std::runtime_error);
}

TEST_P(LaneSchedulerTest, FastForwardsOverIdleGaps)
{
    sim::EventQueue eq0;
    sim::LaneScheduler sched(eq0, config(2, 100));

    int fired = 0;
    // A billion ticks of nothing, then one event: the window loop must
    // jump the gap instead of stepping 10M hundred-tick windows.
    sched.lane(1).scheduleLambda(1'000'000'000, "late", [&] { ++fired; });
    sched.run(1'000'000'050);

    EXPECT_EQ(fired, 1);
    EXPECT_LT(sched.windows(), 8u);
    EXPECT_EQ(sched.lane(0).now(), 1'000'000'050u);
}

TEST_P(LaneSchedulerTest, ChannelSpillKeepsFifoOrder)
{
    sim::EventQueue eq0;
    sim::LaneScheduler::Config c = config(2, 100);
    c.channelCapacity = 4; // force spill after four in-window sends
    sim::LaneScheduler sched(eq0, c);

    std::vector<int> order;
    std::vector<std::unique_ptr<sim::LambdaEvent>> events;
    for (int i = 0; i < 12; ++i) {
        events.push_back(std::make_unique<sim::LambdaEvent>(
            "cross", [&order, i] { order.push_back(i); }));
    }
    sched.lane(1).scheduleLambda(10, "burst", [&] {
        for (int i = 0; i < 12; ++i) {
            // All land on the same post-horizon tick; FIFO across the
            // ring -> spill boundary shows up as seq order on lane 0.
            sched.scheduleCross(1, 0, events[(std::size_t)i].get(), 200);
        }
    });

    sched.run(1000);

    EXPECT_GT(sched.channelOverflows(), 0u);
    ASSERT_EQ(order.size(), 12u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(order[(std::size_t)i], i);
}

TEST_P(LaneSchedulerTest, LaneExceptionPropagates)
{
    sim::EventQueue eq0;
    sim::LaneScheduler sched(eq0, config(2, 100));
    sched.lane(1).setStallThreshold(1000);

    sched.lane(1).scheduleLambda(10, "livelock", [&] {
        // Reschedule at now() forever: the stall guard must fire on the
        // lane's own queue and surface through run().
        sched.lane(1).scheduleLambda(sched.lane(1).now(), "again",
                                     [] {});
    });
    // One self-rescheduling seed isn't a livelock; make it recurrent.
    std::function<void()> spin = [&] {
        sched.lane(1).scheduleLambda(sched.lane(1).now(), "spin", spin);
    };
    sched.lane(1).scheduleLambda(20, "spin", spin);

    EXPECT_THROW(sched.run(1'000'000), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(SerialAndThreaded, LaneSchedulerTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "threaded" : "serial";
                         });

// --------------------------------------- system-level result identity

void
expectBinsEqual(const core::BinMetrics &a, const core::BinMetrics &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.brMispredicts, b.brMispredicts) << what;
    EXPECT_EQ(a.llcMisses, b.llcMisses) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.tcMisses, b.tcMisses) << what;
    EXPECT_EQ(a.itlbMisses, b.itlbMisses) << what;
    EXPECT_EQ(a.dtlbMisses, b.dtlbMisses) << what;
    EXPECT_EQ(a.machineClears, b.machineClears) << what;
}

/** Exact (bitwise for doubles) equality of two run results. */
void
expectResultsIdentical(const core::RunResult &a, const core::RunResult &b,
                       const std::string &what)
{
    EXPECT_FALSE(a.failed) << what;
    EXPECT_FALSE(b.failed) << what;
    EXPECT_EQ(a.seconds, b.seconds) << what;
    EXPECT_EQ(a.payloadBytes, b.payloadBytes) << what;
    EXPECT_EQ(a.throughputMbps, b.throughputMbps) << what;
    EXPECT_EQ(a.cpuUtil, b.cpuUtil) << what;
    for (std::size_t c = 0; c < a.utilPerCpu.size(); ++c)
        EXPECT_EQ(a.utilPerCpu[c], b.utilPerCpu[c]) << what;
    EXPECT_EQ(a.ghzPerGbps, b.ghzPerGbps) << what;
    expectBinsEqual(a.overall, b.overall, what + " overall");
    for (std::size_t i = 0; i < a.bins.size(); ++i)
        expectBinsEqual(a.bins[i], b.bins[i],
                        what + " bin " + std::to_string(i));
    for (std::size_t e = 0; e < a.eventTotals.size(); ++e)
        EXPECT_EQ(a.eventTotals[e], b.eventTotals[e]) << what;
    EXPECT_EQ(a.irqs, b.irqs) << what;
    EXPECT_EQ(a.ipis, b.ipis) << what;
    EXPECT_EQ(a.migrations, b.migrations) << what;
    EXPECT_EQ(a.contextSwitches, b.contextSwitches) << what;
    EXPECT_EQ(a.txDropsRingFull, b.txDropsRingFull) << what;
    EXPECT_EQ(a.rxDropsRingFull, b.rxDropsRingFull) << what;
    EXPECT_EQ(a.rxFramesPerQueue, b.rxFramesPerQueue) << what;
    EXPECT_EQ(a.flows.started, b.flows.started) << what;
    EXPECT_EQ(a.flows.completed, b.flows.completed) << what;
    EXPECT_EQ(a.flows.accepted, b.flows.accepted) << what;
    EXPECT_EQ(a.flows.flowMigrations, b.flows.flowMigrations) << what;
    EXPECT_EQ(a.flows.oooArrivals, b.flows.oooArrivals) << what;
}

core::RunSchedule
tinySchedule()
{
    core::RunSchedule s;
    s.warmup = 2'000'000;   // 1 ms
    s.measure = 10'000'000; // 5 ms
    return s;
}

sim::FaultPlan
lossyPlan()
{
    sim::FaultPlan p;
    p.tag = "lossy";
    p.toPeer.lossProb = 0.002;
    p.toSut.lossProb = 0.002;
    p.toSut.corruptProb = 0.001;
    p.toPeer.dupProb = 0.002;
    return p;
}

/** The determinism matrix: steering policy x fault plan x workload. */
std::vector<std::pair<std::string, core::SystemConfig>>
matrixConfigs()
{
    std::vector<std::pair<std::string, core::SystemConfig>> out;

    {
        core::SystemConfig cfg;
        cfg.platform.numCpus = 2;
        cfg.platform.seed = 42;
        cfg.numConnections = 2;
        cfg.affinity = core::AffinityMode::Full;
        cfg.ttcp().mode = workload::TtcpMode::Transmit;
        cfg.ttcp().msgSize = 4096;
        out.emplace_back("ttcp-tx-static", cfg);
    }
    {
        core::SystemConfig cfg;
        cfg.platform.numCpus = 2;
        cfg.platform.seed = 43;
        cfg.numConnections = 2;
        cfg.ttcp().mode = workload::TtcpMode::Receive;
        cfg.ttcp().msgSize = 4096;
        cfg.steering.kind = net::SteeringKind::Rss;
        cfg.steering.numQueues = 2;
        out.emplace_back("ttcp-rx-rss", cfg);
    }
    {
        core::SystemConfig cfg;
        cfg.platform.numCpus = 2;
        cfg.platform.seed = 44;
        cfg.numConnections = 2;
        cfg.ttcp().mode = workload::TtcpMode::Transmit;
        cfg.ttcp().msgSize = 16384;
        cfg.steering.kind = net::SteeringKind::FlowDirector;
        cfg.steering.numQueues = 2;
        cfg.faults = lossyPlan();
        out.emplace_back("ttcp-tx-fd-faults", cfg);
    }
    {
        core::SystemConfig cfg;
        cfg.platform.numCpus = 2;
        cfg.platform.seed = 45;
        cfg.numConnections = 2;
        workload::FlowMixConfig mix;
        mix.maxConcurrentFlows = 8;
        mix.flowSizeMin = 1024;
        mix.flowSizeMax = 64 * 1024;
        mix.meanInterarrivalTicks = 150'000;
        cfg.workload = mix;
        out.emplace_back("flowmix-static", cfg);
    }
    return out;
}

core::RunResult
runWith(core::SystemConfig cfg, int lanes, bool threads)
{
    cfg.lanes = lanes;
    cfg.laneThreads = threads;
    core::System sys(cfg);
    return core::Experiment::measure(sys, tinySchedule());
}

TEST(LaneDeterminismMatrix, MultiLaneMatchesSingleLane)
{
    for (const auto &[label, cfg] : matrixConfigs()) {
        const core::RunResult base = runWith(cfg, 1, false);
        const core::RunResult serial2 = runWith(cfg, 2, false);
        expectResultsIdentical(base, serial2, label + " lanes=2 serial");
        const core::RunResult threaded2 = runWith(cfg, 2, true);
        expectResultsIdentical(base, threaded2,
                               label + " lanes=2 threaded");
        const core::RunResult threaded3 = runWith(cfg, 3, true);
        expectResultsIdentical(base, threaded3,
                               label + " lanes=3 threaded");
    }
}

TEST(LaneDeterminismMatrix, ThreadedRunsAreReproducible)
{
    for (const auto &[label, cfg] : matrixConfigs()) {
        const core::RunResult once = runWith(cfg, 3, true);
        const core::RunResult again = runWith(cfg, 3, true);
        expectResultsIdentical(once, again, label + " repeat");
    }
}

TEST(LaneConfig, ValidationRejectsBadLaneCounts)
{
    core::SystemConfig cfg;
    cfg.lanes = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.lanes = cfg.numConnections + 2;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    cfg.lanes = 2;
    cfg.wireLatencyTicks = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

} // namespace
