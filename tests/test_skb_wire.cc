/**
 * @file
 * Unit tests for the skb slab pool and the wire model.
 */

#include <gtest/gtest.h>

#include "src/net/skb.hh"
#include "src/net/wire.hh"
#include "src/os/exec_context.hh"
#include "src/os/kernel.hh"

using namespace na;
using namespace na::net;

namespace {

class SkbTest : public ::testing::Test
{
  protected:
    SkbTest()
        : kernel(&root, eq, cpu::PlatformConfig{}),
          pool(&root, kernel, 256),
          c0(kernel, kernel.processor(0), nullptr),
          c1(kernel, kernel.processor(1), nullptr)
    {
    }

    stats::Group root{nullptr, ""};
    sim::EventQueue eq;
    os::Kernel kernel;
    SkbPool pool;
    os::ExecContext c0;
    os::ExecContext c1;
};

TEST_F(SkbTest, AllocGivesDistinctSlots)
{
    SkBuff a = pool.alloc(c0);
    SkBuff b = pool.alloc(c0);
    ASSERT_TRUE(a.valid());
    ASSERT_TRUE(b.valid());
    EXPECT_NE(a.slot, b.slot);
    EXPECT_NE(a.dataAddr, b.dataAddr);
    EXPECT_NE(a.structAddr, b.structAddr);
    EXPECT_EQ(mem::AddressAllocator::regionOf(a.dataAddr),
              mem::Region::SkbSlab);
    pool.free(c0, a);
    pool.free(c0, b);
}

TEST_F(SkbTest, LifoReusePerCpu)
{
    SkBuff a = pool.alloc(c0);
    const int slot = a.slot;
    pool.free(c0, a);
    SkBuff b = pool.alloc(c0);
    EXPECT_EQ(b.slot, slot) << "front cache must reuse LIFO";
    pool.free(c0, b);
}

TEST_F(SkbTest, FrontCachesAreDistinctPerCpu)
{
    SkBuff a = pool.alloc(c0);
    pool.free(c0, a); // on CPU0's front now
    SkBuff b = pool.alloc(c1);
    EXPECT_NE(b.slot, a.slot) << "CPU1 must not see CPU0's front";
    pool.free(c1, b);
}

TEST_F(SkbTest, CountsConserveSlots)
{
    const int before = pool.freeCount();
    std::vector<SkBuff> held;
    for (int i = 0; i < 100; ++i)
        held.push_back(pool.alloc(c0));
    EXPECT_EQ(pool.freeCount(), before - 100);
    for (const SkBuff &s : held)
        pool.free(c0, s);
    EXPECT_EQ(pool.freeCount(), before);
    EXPECT_EQ(pool.allocs.value(), 100.0);
    EXPECT_EQ(pool.frees.value(), 100.0);
}

TEST_F(SkbTest, ExhaustionReturnsInvalid)
{
    std::vector<SkBuff> held;
    for (int i = 0; i < 256; ++i) {
        SkBuff s = pool.alloc(c0);
        if (s.valid())
            held.push_back(s);
    }
    SkBuff fail = pool.alloc(c0);
    EXPECT_FALSE(fail.valid());
    EXPECT_GT(pool.exhausted.value(), 0.0);
    for (const SkBuff &s : held)
        pool.free(c0, s);
}

TEST_F(SkbTest, FrontFlushReturnsSlotsToSharedList)
{
    // Free far more than 2*batch on CPU0: flushes must occur, making
    // slots visible to CPU1.
    std::vector<SkBuff> held;
    for (int i = 0; i < 200; ++i)
        held.push_back(pool.alloc(c0));
    for (const SkBuff &s : held)
        pool.free(c0, s);
    EXPECT_GT(pool.flushes.value(), 0.0);
    // CPU1 can now drain more than the shared remainder alone.
    std::vector<SkBuff> held1;
    for (int i = 0; i < 150; ++i) {
        SkBuff s = pool.alloc(c1);
        ASSERT_TRUE(s.valid()) << "flushed slots lost";
        held1.push_back(s);
    }
    for (const SkBuff &s : held1)
        pool.free(c1, s);
}

TEST_F(SkbTest, AllocRawBypassesCharges)
{
    const double busy = kernel.core(0).counters.busyCycles.value();
    SkBuff s = pool.allocRaw();
    ASSERT_TRUE(s.valid());
    EXPECT_EQ(kernel.core(0).counters.busyCycles.value(), busy);
    EXPECT_EQ(pool.slotRef(s.slot).dataAddr, s.dataAddr);
}

TEST_F(SkbTest, DeathOnFreeingInvalid)
{
    EXPECT_DEATH(pool.free(c0, SkBuff{}), "invalid skb");
}

class WireTest : public ::testing::Test
{
  protected:
    WireTest()
        : wire(&root, "w", eq, 2.0e9, 1.0e9, /*latency=*/1000)
    {
        wire.attachA([this](const Packet &p) { atA.push_back(p); });
        wire.attachB([this](const Packet &p) { atB.push_back(p); });
    }

    Packet
    mkPkt(std::uint32_t len)
    {
        Packet p;
        p.flow = FlowKey{1, 2, 3, 4};
        p.seg.len = len;
        return p;
    }

    stats::Group root{nullptr, ""};
    sim::EventQueue eq;
    Wire wire;
    std::vector<Packet> atA;
    std::vector<Packet> atB;
};

TEST_F(WireTest, DeliversWithSerializationPlusLatency)
{
    wire.sendFromA(mkPkt(1448));
    // (1448+90)*8 bits at 1 Gb/s on a 2 GHz clock = 24608 ticks.
    const sim::Tick ser = (1448 + 90) * 8 * 2;
    eq.runUntil(ser + 999);
    EXPECT_TRUE(atB.empty());
    eq.runUntil(ser + 1000);
    ASSERT_EQ(atB.size(), 1u);
    EXPECT_EQ(atB[0].seg.len, 1448u);
}

TEST_F(WireTest, BackToBackSendsSerialize)
{
    wire.sendFromA(mkPkt(1448));
    wire.sendFromA(mkPkt(1448));
    const sim::Tick ser = (1448 + 90) * 8 * 2;
    eq.runUntil(ser + 1000);
    EXPECT_EQ(atB.size(), 1u);
    eq.runUntil(2 * ser + 1000);
    EXPECT_EQ(atB.size(), 2u);
}

TEST_F(WireTest, DirectionsAreIndependent)
{
    wire.sendFromA(mkPkt(1448));
    wire.sendFromB(mkPkt(1448));
    const sim::Tick ser = (1448 + 90) * 8 * 2;
    eq.runUntil(ser + 1000);
    EXPECT_EQ(atA.size(), 1u);
    EXPECT_EQ(atB.size(), 1u);
    EXPECT_EQ(wire.pktsAtoB.value(), 1.0);
    EXPECT_EQ(wire.pktsBtoA.value(), 1.0);
}

TEST_F(WireTest, LossDropsApproximatelyAtConfiguredRate)
{
    wire.setLossProb(0.5);
    for (int i = 0; i < 1000; ++i)
        wire.sendFromA(mkPkt(100));
    eq.runUntil(1'000'000'000);
    EXPECT_NEAR(static_cast<double>(atB.size()), 500.0, 60.0);
    EXPECT_NEAR(wire.losses(), 500.0, 60.0);
}

TEST_F(WireTest, PayloadByteCountersTrackData)
{
    wire.sendFromA(mkPkt(1000));
    wire.sendFromA(mkPkt(500));
    eq.runUntil(1'000'000);
    EXPECT_EQ(wire.bytesAtoB.value(), 1500.0);
}

TEST(WireDeath, SendWithoutReceiverPanics)
{
    stats::Group root(nullptr, "");
    sim::EventQueue eq;
    Wire w(&root, "w", eq, 2.0e9);
    Packet p;
    p.seg.len = 1;
    EXPECT_DEATH(w.sendFromA(p), "no receiver");
}

} // namespace
